(* The crash-point model checker: exhaustive search over (component ×
   labeled recovery step), crashing each component mid-recovery at
   each of its steps and asking a caller-supplied runner whether the
   stack converged. The simulator is deterministic, so the enumeration
   is exhaustive and every counterexample replays. *)

type case = { component : string; step : string }

type verdict = {
  case : case;
  converged : bool;
  violations : Report.violation list;
  trace : string list;
}

type outcome = {
  verdicts : verdict list;  (* enumeration order *)
  skipped : case list;  (* budget exhausted before these ran *)
  elapsed : float;  (* CPU seconds spent searching *)
}

let enumerate specs =
  List.concat_map
    (fun (component, steps) ->
      List.map (fun step -> { component; step }) steps)
    specs

let search ?budget ~cases ~run () =
  let t0 = Sys.time () in
  let over () =
    match budget with None -> false | Some b -> Sys.time () -. t0 > b
  in
  let rec go acc = function
    | [] -> { verdicts = List.rev acc; skipped = []; elapsed = Sys.time () -. t0 }
    | rest when over () ->
        { verdicts = List.rev acc; skipped = rest; elapsed = Sys.time () -. t0 }
    | case :: rest -> go (run case :: acc) rest
  in
  go [] cases

let counterexamples o = List.filter (fun v -> not v.converged) o.verdicts
let ok o = counterexamples o = []

let report ~title o =
  let ces = counterexamples o in
  {
    Report.title;
    checks =
      [
        ("crash-points", List.length o.verdicts);
        ("converged", List.length o.verdicts - List.length ces);
        ("skipped", List.length o.skipped);
      ];
    violations =
      List.concat_map
        (fun v ->
          let where =
            Printf.sprintf "%s crashed after step %s" v.case.component
              v.case.step
          in
          match v.violations with
          | [] ->
              [
                {
                  Report.check = "no-convergence";
                  subject = where;
                  culprit = v.case.component;
                  detail =
                    "the stack did not return to a healthy state after the \
                     mid-recovery crash";
                };
              ]
          | vs ->
              List.map
                (fun (viol : Report.violation) ->
                  {
                    viol with
                    Report.subject =
                      Printf.sprintf "%s [%s]" viol.Report.subject where;
                  })
                vs)
        ces;
  }

let verdict_json v =
  let e = Report.json_escape in
  Printf.sprintf
    "{\"component\":\"%s\",\"step\":\"%s\",\"converged\":%b,\"violations\":[%s],\"trace\":[%s]}"
    (e v.case.component) (e v.case.step) v.converged
    (String.concat ","
       (List.map
          (fun (viol : Report.violation) ->
            Printf.sprintf
              "{\"check\":\"%s\",\"subject\":\"%s\",\"culprit\":\"%s\",\"detail\":\"%s\"}"
              (e viol.Report.check) (e viol.Report.subject)
              (e viol.Report.culprit) (e viol.Report.detail))
          v.violations))
    (String.concat "," (List.map (fun l -> "\"" ^ e l ^ "\"") v.trace))

let to_json ~title o =
  Printf.sprintf
    "{\"title\":\"%s\",\"ok\":%b,\"crash_points\":%d,\"converged\":%d,\"counterexamples\":[%s],\"skipped\":[%s],\"elapsed_s\":%.2f,\"verdicts\":[%s]}"
    (Report.json_escape title) (ok o) (List.length o.verdicts)
    (List.length o.verdicts - List.length (counterexamples o))
    (String.concat "," (List.map verdict_json (counterexamples o)))
    (String.concat ","
       (List.map
          (fun c ->
            Printf.sprintf "{\"component\":\"%s\",\"step\":\"%s\"}"
              (Report.json_escape c.component) (Report.json_escape c.step))
          o.skipped))
    o.elapsed
    (String.concat ","
       (List.map
          (fun v ->
            Printf.sprintf
              "{\"component\":\"%s\",\"step\":\"%s\",\"converged\":%b}"
              (Report.json_escape v.case.component)
              (Report.json_escape v.case.step) v.converged)
          o.verdicts))
