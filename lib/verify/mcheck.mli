(** Exhaustive crash-point model checker for the recovery procedures.

    Table I's dependability argument assumes recovery works from {e
    any} crash point — including a crash in the middle of recovery
    itself. Every {!Newt_stack.Component} names its recovery steps
    ({!Newt_stack.Component.recovery_steps}); this module enumerates
    the full (component × labeled step) space and, for each crash
    point, asks a caller-supplied runner to arm the one-shot injector
    ({!Newt_stack.Component.arm_crash_after}), drive the workload,
    crash the component, let the reincarnation server recover it —
    dying again right after the armed step, forcing a second recovery
    — and judge convergence: the stack back to responsive, the
    continuous verifier and the {!Protocol} checker both clean.

    The search driver is deliberately generic (a fold over cases with
    a CPU-time budget): the concrete runners live with the experiment
    harness, which knows how to build hosts. Because the simulator is
    deterministic, the enumeration is exhaustive and every
    counterexample replays bit-for-bit; non-converging steps are
    reported with the protocol checker's event trace. *)

type case = { component : string; step : string }
(** One crash point: crash [component] right after recovery [step]. *)

type verdict = {
  case : case;
  converged : bool;
  violations : Report.violation list;
      (** What the checkers held against this crash point (empty for a
          bare convergence failure). *)
  trace : string list;
      (** The protocol checker's recent-event trace at the failure —
          the counterexample; empty when converged. *)
}

type outcome = {
  verdicts : verdict list;  (** Enumeration order. *)
  skipped : case list;  (** Budget ran out before these were tried. *)
  elapsed : float;  (** CPU seconds spent searching. *)
}

val enumerate : (string * string list) list -> case list
(** [(component, its recovery steps)] pairs — typically
    [Component.recovery_steps] over a host's components — flattened
    into the crash-point list, preserving order. *)

val search :
  ?budget:float -> cases:case list -> run:(case -> verdict) -> unit -> outcome
(** Run every case through [run], in order. [budget] caps the search
    in CPU seconds: cases beyond it are reported as skipped, never
    silently dropped. *)

val counterexamples : outcome -> verdict list
val ok : outcome -> bool

val report : title:string -> outcome -> Report.t
(** Counterexamples as standard violations, crash-point subjects
    included. *)

val to_json : title:string -> outcome -> string
(** Full machine verdict: every crash point with its convergence flag,
    counterexamples with violations and event traces, skipped cases,
    elapsed time. *)
