module Hook = Newt_channels.Hook

(* {1 The rule language}

   The contract is data: a list of guarded rules over per-request-id
   conversations. Each hook event is translated into an [atom] for its
   id; the first rule whose atom matches and whose source-state guard
   admits the conversation's current state fires its actions. *)

type atom =
  | Submitted
  | Confirmed
  | Stale_confirmed
  | Aborted_by_sweep
  | Owner_died
  | Req_sent
  | Req_received
  | Req_dropped
  | Conf_sent
  | Conf_received
  | Conf_dropped

type action =
  | Goto of string
  | Count of string
  | Flag of { check : string; detail : string }
  | Flight_up of [ `Req | `Conf ]
  | Flight_down of [ `Req | `Conf ]

type rule = { on : atom; from : string list; act : action list }
(* [from = []] is the wildcard: the rule fires from any state. *)

(* Conversation states: "fresh" (id never seen), "pending" (submitted,
   unresolved), "confirmed", "aborted" (abort sweep ran its action),
   "dead" (the owning database was dropped wholesale). *)

let contract : rule list =
  [
    (* request ⇒ eventually (confirm ∨ abort): open the obligation. *)
    { on = Submitted; from = [ "fresh" ]; act = [ Goto "pending"; Count "requests" ] };
    {
      on = Submitted;
      from = [];
      act =
        [
          Flag
            {
              check = "duplicate-request-id";
              detail =
                "request id issued twice — identifiers must be unique for the \
                 process lifetime (Section V-D)";
            };
        ];
    };
    (* A live record resolved: the obligation is met. *)
    { on = Confirmed; from = [ "pending" ]; act = [ Goto "confirmed"; Count "confirms" ] };
    {
      on = Confirmed;
      from = [];
      act =
        [
          Flag
            {
              check = "confirm-unpaired";
              detail =
                "the request database resolved a record the checker never saw \
                 submitted";
            };
        ];
    };
    (* complete() on an unknown id: benign only for conversations a
       crash already closed. *)
    { on = Stale_confirmed; from = [ "aborted"; "dead" ]; act = [ Count "stale-confirms" ] };
    {
      on = Stale_confirmed;
      from = [ "confirmed" ];
      act =
        [
          Flag
            {
              check = "duplicate-confirm";
              detail = "second confirm for an already-confirmed request";
            };
        ];
    };
    {
      on = Stale_confirmed;
      from = [ "pending" ];
      act =
        [
          Flag
            {
              check = "confirm-wrong-db";
              detail =
                "confirm hit a database that never held this request — the \
                 record is pending elsewhere";
            };
        ];
    };
    {
      on = Stale_confirmed;
      from = [];
      act =
        [
          Flag
            {
              check = "confirm-without-request";
              detail = "confirm for a request id that was never submitted";
            };
        ];
    };
    (* abort-implies-record-removed: the sweep removes records before
       running aborts, so an abort for anything but a pending record
       means the database lied. *)
    { on = Aborted_by_sweep; from = [ "pending" ]; act = [ Goto "aborted"; Count "aborts" ] };
    {
      on = Aborted_by_sweep;
      from = [];
      act =
        [
          Flag
            {
              check = "abort-without-request";
              detail = "abort action ran for a request that was not pending";
            };
        ];
    };
    (* The owning database died wholesale: obligations die with it. *)
    { on = Owner_died; from = [ "pending" ]; act = [ Goto "dead"; Count "owner-deaths" ] };
    { on = Owner_died; from = []; act = [] };
    (* hand-off ⇒ eventually (receive ∨ drop): balance per-id flight
       counters; what is still up when the trace closes is an
       undelivered hand-off. *)
    { on = Req_sent; from = []; act = [ Flight_up `Req; Count "req-msgs" ] };
    { on = Req_received; from = []; act = [ Flight_down `Req ] };
    { on = Req_dropped; from = []; act = [ Flight_down `Req; Count "req-drops" ] };
    { on = Conf_sent; from = []; act = [ Flight_up `Conf; Count "conf-msgs" ] };
    { on = Conf_received; from = []; act = [ Flight_down `Conf ] };
    (* A confirm discarded while its request is still pending strands
       the requester: the record's owner will wait forever. Discards
       for conversations a crash closed are the normal teardown path
       (the database reset precedes the channel teardown). *)
    {
      on = Conf_dropped;
      from = [ "pending" ];
      act =
        [
          Flight_down `Conf;
          Flag
            {
              check = "dropped-confirm";
              detail =
                "confirm discarded while the request is still pending — the \
                 requester is stranded";
            };
        ];
    };
    { on = Conf_dropped; from = []; act = [ Flight_down `Conf; Count "conf-drops" ] };
  ]

let atom_name = function
  | Submitted -> "submitted"
  | Confirmed -> "confirmed"
  | Stale_confirmed -> "stale-confirmed"
  | Aborted_by_sweep -> "aborted"
  | Owner_died -> "owner-died"
  | Req_sent -> "req-sent"
  | Req_received -> "req-received"
  | Req_dropped -> "req-dropped"
  | Conf_sent -> "conf-sent"
  | Conf_received -> "conf-received"
  | Conf_dropped -> "conf-dropped"

let describe_rules () =
  List.map
    (fun r ->
      let from =
        match r.from with [] -> "any" | ss -> String.concat "|" ss
      in
      let acts =
        List.map
          (function
            | Goto s -> "goto " ^ s
            | Count c -> "count " ^ c
            | Flag { check; _ } -> "VIOLATION " ^ check
            | Flight_up `Req -> "req-flight++"
            | Flight_up `Conf -> "conf-flight++"
            | Flight_down `Req -> "req-flight--"
            | Flight_down `Conf -> "conf-flight--")
          r.act
      in
      Printf.sprintf "on %s from %s: %s" (atom_name r.on) from
        (String.concat ", " acts))
    contract

(* {1 The compiled runtime checker} *)

type conv = {
  mutable state : string;
  mutable db : int;
  mutable req_flight : int;
  mutable conf_flight : int;
  mutable queued : bool;  (* sitting in the retirement queue *)
}

let convs : (int, conv) Hashtbl.t = Hashtbl.create 4096
let by_db : (int, (int, unit) Hashtbl.t) Hashtbl.t = Hashtbl.create 64
let counters : (string, int) Hashtbl.t = Hashtbl.create 32
let viols : Report.violation list ref = ref []
let events = ref 0
let token : Hook.token option ref = ref None

(* What one conversation update would cost in model cycles had the
   checker run inline in the stack proper (a hash probe plus a rule
   dispatch) — the accounting behind {!overhead_cycles}. *)
let cycles_per_event = 30

(* Ring buffer of the most recent protocol events, rendered lazily:
   the counterexample trace of the model checker. *)
let ring_size = 64
let ring : (string option * Hook.event) option array = Array.make ring_size None
let ring_next = ref 0

let remember ~actor ev =
  ring.(!ring_next mod ring_size) <- Some (actor, ev);
  incr ring_next

let who = function Some a -> a | None -> "unattributed"

let render (actor, ev) =
  let a = who actor in
  match ev with
  | Hook.Req_submit { db; id; peer } ->
      Printf.sprintf "%s: submit id %d (db %d, to peer %d)" a id db peer
  | Hook.Req_confirm { db; id; known } ->
      Printf.sprintf "%s: confirm id %d (db %d%s)" a id db
        (if known then "" else ", unknown id")
  | Hook.Req_abort { db; id; peer } ->
      Printf.sprintf "%s: abort id %d (db %d, peer %d died)" a id db peer
  | Hook.Req_reset { db } -> Printf.sprintf "%s: reset db %d" a db
  | Hook.Msg_req { chan; id; way } ->
      Printf.sprintf "%s: request id %d %s (chan %d)" a id
        (match way with
        | `Sent -> "sent"
        | `Received -> "received"
        | `Dropped -> "dropped")
        chan
  | Hook.Msg_conf { chan; id; way } ->
      Printf.sprintf "%s: confirm id %d %s (chan %d)" a id
        (match way with
        | `Sent -> "sent"
        | `Received -> "received"
        | `Dropped -> "dropped")
        chan
  | _ -> Printf.sprintf "%s: (non-protocol event)" a

let trace () =
  let n = min !ring_next ring_size in
  let start = !ring_next - n in
  List.init n (fun i ->
      match ring.((start + i) mod ring_size) with
      | Some entry -> render entry
      | None -> "")
  |> List.filter (fun s -> s <> "")

(* {2 Conversation retirement}

   Request ids are unique for the process lifetime, so without pruning
   the conversation table grows with every request ever made — a
   checker meant to run continuously would leak. A conversation that
   reached a terminal state (confirmed, aborted, dead) with no message
   in flight can no longer transition: the only events that may still
   mention its id are stale confirms, which the grace window absorbs.
   After [retire_grace] further events it is dropped wholesale. A
   straggler arriving later recreates the id as "fresh", so the grace
   must cover the longest legitimate confirm latency (in events); the
   default is generous and settable for tests. *)

let retire_grace = ref 4096
let set_retire_grace n = retire_grace := max 1 n
let retire_q : (int * int) Queue.t = Queue.create ()

let terminal = function
  | "confirmed" | "aborted" | "dead" -> true
  | _ -> false

let retire_due () =
  let horizon = !events - !retire_grace in
  let rec go () =
    match Queue.peek_opt retire_q with
    | Some (id, at) when at <= horizon -> (
        ignore (Queue.pop retire_q);
        match Hashtbl.find_opt convs id with
        | Some c when terminal c.state && c.req_flight + c.conf_flight = 0 ->
            Hashtbl.remove convs id;
            Hashtbl.replace counters "retired"
              (1
              + match Hashtbl.find_opt counters "retired" with
                | Some n -> n
                | None -> 0);
            (match Hashtbl.find_opt by_db c.db with
            | Some ids ->
                Hashtbl.remove ids id;
                if Hashtbl.length ids = 0 then Hashtbl.remove by_db c.db
            | None -> ());
            go ()
        | Some c ->
            (* Not retirable after all — let a later event re-queue it. *)
            c.queued <- false;
            go ()
        | None -> go ())
    | _ -> ()
  in
  go ()

let clear () =
  Hashtbl.reset convs;
  Hashtbl.reset by_db;
  Hashtbl.reset counters;
  viols := [];
  events := 0;
  Queue.clear retire_q;
  Array.fill ring 0 ring_size None;
  ring_next := 0

let bump name =
  Hashtbl.replace counters name
    (1 + match Hashtbl.find_opt counters name with Some n -> n | None -> 0)

let count name =
  match Hashtbl.find_opt counters name with Some n -> n | None -> 0

let counts () =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) counters [] |> List.sort compare

let conv_of id =
  match Hashtbl.find_opt convs id with
  | Some c -> c
  | None ->
      let c =
        {
          state = "fresh";
          db = -1;
          req_flight = 0;
          conf_flight = 0;
          queued = false;
        }
      in
      Hashtbl.add convs id c;
      c

let record check ~id ~actor ~state detail =
  viols :=
    {
      Report.check;
      subject = Printf.sprintf "request id %d" id;
      culprit = who actor;
      detail = Printf.sprintf "%s (conversation state: %s)" detail state;
    }
    :: !viols

(* First-match rule dispatch: the "compiler" is the specialization of
   the data-level contract against (atom, state). *)
let apply ~actor ~id atom =
  let c = conv_of id in
  let matching r =
    r.on = atom && (r.from = [] || List.mem c.state r.from)
  in
  match List.find_opt matching contract with
  | None -> bump "unmatched"
  | Some r ->
      let before = c.state in
      List.iter
        (function
          | Goto s -> c.state <- s
          | Count name -> bump name
          | Flag { check; detail } -> record check ~id ~actor ~state:before detail
          | Flight_up `Req -> c.req_flight <- c.req_flight + 1
          | Flight_up `Conf -> c.conf_flight <- c.conf_flight + 1
          | Flight_down `Req -> c.req_flight <- max 0 (c.req_flight - 1)
          | Flight_down `Conf -> c.conf_flight <- max 0 (c.conf_flight - 1))
        r.act;
      if terminal c.state && c.req_flight + c.conf_flight = 0 && not c.queued
      then begin
        c.queued <- true;
        Queue.push (id, !events) retire_q
      end

let index_db ~db id =
  match Hashtbl.find_opt by_db db with
  | Some ids -> Hashtbl.replace ids id ()
  | None ->
      let ids = Hashtbl.create 64 in
      Hashtbl.replace ids id ();
      Hashtbl.add by_db db ids

let on_event ~actor ev =
  retire_due ();
  match ev with
  | Hook.Req_submit { db; id; _ } ->
      incr events;
      remember ~actor ev;
      apply ~actor ~id Submitted;
      (conv_of id).db <- db;
      index_db ~db id
  | Hook.Req_confirm { id; known; _ } ->
      incr events;
      remember ~actor ev;
      apply ~actor ~id (if known then Confirmed else Stale_confirmed)
  | Hook.Req_abort { id; _ } ->
      incr events;
      remember ~actor ev;
      apply ~actor ~id Aborted_by_sweep
  | Hook.Req_reset { db } ->
      incr events;
      remember ~actor ev;
      (match Hashtbl.find_opt by_db db with
      | Some ids ->
          Hashtbl.iter (fun id () -> apply ~actor ~id Owner_died) ids
      | None -> ())
  | Hook.Msg_req { id; way; _ } ->
      incr events;
      remember ~actor ev;
      apply ~actor ~id
        (match way with
        | `Sent -> Req_sent
        | `Received -> Req_received
        | `Dropped -> Req_dropped)
  | Hook.Msg_conf { id; way; _ } ->
      incr events;
      remember ~actor ev;
      apply ~actor ~id
        (match way with
        | `Sent -> Conf_sent
        | `Received -> Conf_received
        | `Dropped -> Conf_dropped)
  | Hook.Pool_own _ | Hook.Pool_grant _ | Hook.Pool_alloc _ | Hook.Pool_write _
  | Hook.Pool_read _ | Hook.Pool_free _ | Hook.Pool_free_all _
  | Hook.Pool_double_free _ | Hook.Pool_stale _ | Hook.Chan_handoff _
  | Hook.Chan_receive _ | Hook.Chan_dropped _ ->
      ()

let install () =
  if !token = None then begin
    clear ();
    token := Some (Hook.add on_event)
  end

let uninstall () =
  match !token with
  | Some tok ->
      Hook.remove tok;
      token := None
  | None -> ()

let active () = !token <> None
let reset () = clear ()

(* Close the trace: what "eventually" means at the end of a run. Only
   a drained run (quiesced tail, every channel empty) may treat open
   obligations as violations — mid-run there is always legitimate
   in-flight work. *)
let finish ?(drained = false) () =
  if drained then
    Hashtbl.iter
      (fun id c ->
        if c.state = "pending" then
          record "unresolved-request" ~id ~actor:None ~state:c.state
            "request neither confirmed nor aborted by the end of a drained run";
        if c.state <> "dead" && c.req_flight + c.conf_flight > 0 then
          record "undelivered-handoff" ~id ~actor:None ~state:c.state
            (Printf.sprintf
               "%d message(s) for this request neither received nor dropped by \
                the end of a drained run"
               (c.req_flight + c.conf_flight)))
      convs

let violations () = List.rev !viols
let event_count () = !events
let overhead_cycles () = !events * cycles_per_event
let conversations () = Hashtbl.length convs

let report ?(title = "dynamic channel protocol") () =
  {
    Report.title;
    checks =
      [
        ("requests", count "requests");
        ("confirms", count "confirms");
        ("aborts", count "aborts");
        ("owner-deaths", count "owner-deaths");
        ("stale-confirms", count "stale-confirms");
        ("req-msgs", count "req-msgs");
        ("conf-msgs", count "conf-msgs");
        ("req-drops", count "req-drops");
        ("conf-drops", count "conf-drops");
        ("retired", count "retired");
      ];
    violations = violations ();
  }
