(** Dynamic channel-protocol verifier.

    The paper's dependability claim is a protocol claim: every
    in-flight request has a request-database record with an abort
    action, every hand-off is eventually confirmed or aborted, and
    recovery restores that invariant from any crash point (Sections
    IV, IV-D, V-D). {!Static} checks the wiring; this module checks
    the {e behaviour} — it replays the [Req_*]/[Msg_*] events the
    stack mirrors onto {!Newt_channels.Hook} and verifies the
    per-message-id temporal contract:

    - request ⇒ eventually (confirm ∨ abort) — closed by {!finish} on
      a drained run ("unresolved-request");
    - no confirm without a request ("confirm-without-request"), no
      duplicate confirm ("duplicate-confirm");
    - abort implies the record was removed first
      ("abort-without-request" — the database must never run an abort
      action for a record it still holds or never held);
    - a confirm must not be discarded while its request is pending
      ("dropped-confirm" — the requester would be stranded);
    - hand-off ⇒ eventually (receive ∨ drop) ("undelivered-handoff"
      at {!finish}).

    Confirms for conversations a crash already closed (the owner's
    database was reset, or the record was aborted) are the stale
    replies the stack absorbs by design — counted, never flagged.

    {b The rule language.} The contract is data ({!contract}): ordered
    guarded rules [{on; from; act}] over per-id conversations. Each
    hook event becomes an {!atom} for its request id; the first rule
    whose [on] matches and whose [from] guard admits the
    conversation's current state fires its actions (state transition,
    counter bump, violation flag, flight-counter update). The runtime
    checker is this table specialized against the live event stream —
    new invariants are new rows, not new code.

    The checker registers on the hook {e chain} ({!Hook.add}), so it
    runs simultaneously with the {!Sanitizer}. *)

module Hook = Newt_channels.Hook

(** {1 The rule language} *)

(** Per-conversation observation, derived from one hook event. *)
type atom =
  | Submitted  (** [Req_submit]: the obligation opens. *)
  | Confirmed  (** [Req_confirm] with a live record. *)
  | Stale_confirmed  (** [Req_confirm] for an unknown id. *)
  | Aborted_by_sweep  (** [Req_abort]: discharged by cancellation. *)
  | Owner_died  (** [Req_reset] fan-out: the owning database vanished. *)
  | Req_sent
  | Req_received
  | Req_dropped
  | Conf_sent
  | Conf_received
  | Conf_dropped

type action =
  | Goto of string  (** Move the conversation to this state. *)
  | Count of string  (** Bump a named counter. *)
  | Flag of { check : string; detail : string }  (** Record a violation. *)
  | Flight_up of [ `Req | `Conf ]  (** A message entered a channel. *)
  | Flight_down of [ `Req | `Conf ]  (** It was received or dropped. *)

type rule = { on : atom; from : string list; act : action list }
(** [from = []] is the wildcard. Conversation states: ["fresh"],
    ["pending"], ["confirmed"], ["aborted"], ["dead"]. *)

val contract : rule list
(** The stack's request/confirm contract, first-match ordered. *)

val describe_rules : unit -> string list
(** One human-readable line per rule, in match order (for docs and
    the CLI's rule listing). *)

(** {1 The runtime checker} *)

val install : unit -> unit
(** Clear state and register on the hook chain (no-op if already
    registered). Other listeners — the sanitizer — are unaffected. *)

val uninstall : unit -> unit
(** Unregister from the hook chain. Collected state stays readable. *)

val active : unit -> bool

val reset : unit -> unit
(** Drop all conversations, counters, violations and the trace ring;
    the listener (if registered) stays registered. *)

val finish : ?drained:bool -> unit -> unit
(** Close the trace: with [~drained:true] (a quiesced run — every
    channel empty), flag still-pending conversations as
    ["unresolved-request"] and unbalanced flight counters as
    ["undelivered-handoff"]. Without it, only what already violated is
    reported — mid-run there is always legitimate in-flight work. *)

val violations : unit -> Report.violation list

val counts : unit -> (string * int) list
(** All named counters, sorted. *)

val count : string -> int
(** One counter (0 if never bumped): ["requests"], ["confirms"],
    ["aborts"], ["owner-deaths"], ["stale-confirms"], ["req-msgs"],
    ["conf-msgs"], ["req-drops"], ["conf-drops"], ["retired"]. *)

val conversations : unit -> int
(** Conversations currently tracked. Terminal conversations (confirmed,
    aborted, dead) with no message in flight are retired after a grace
    window, so this stays bounded by the number of {e open} obligations
    plus the window — a continuously-running checker does not leak. *)

val set_retire_grace : int -> unit
(** Events a terminal conversation lingers before retirement (default
    4096). The window must cover the longest legitimate stale-confirm
    latency: a straggler for a retired id is re-seen as a fresh
    conversation and would be flagged. *)

val event_count : unit -> int
(** Protocol hook events replayed. *)

val overhead_cycles : unit -> int
(** Model-cycle cost had the checker run inline (accounting only). *)

val trace : unit -> string list
(** The most recent protocol events (bounded ring), rendered oldest
    first — the counterexample trace the model checker attaches to a
    non-converging crash point. *)

val report : ?title:string -> unit -> Report.t
