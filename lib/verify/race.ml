module Hook = Newt_channels.Hook

(* ------------------------------------------------------------------ *)
(* Static layer: the domain-ownership lint over a pinning plan.       *)
(* ------------------------------------------------------------------ *)

module Plan = struct
  type prim = Ring | Atomic | Park_mutex | Pool_lock
  type kind = Ring_buf | Pool | Inbox | Counter | Timer_wheel | Table

  type resource = {
    res : string;
    kind : kind;
    owner : string option;
    writers : string list;
    readers : string list;
    grants : string list;
    via : prim option;
  }

  type t = {
    domains : int;
    placement : (string * int) list;
    resources : resource list;
  }
end

let check_plan ?(title = "native domain ownership") (p : Plan.t) : Report.t =
  let open Plan in
  let violations = ref [] in
  let flag check subject culprit detail =
    violations := { Report.check; subject; culprit; detail } :: !violations
  in
  let dom_of c = List.assoc_opt c p.placement in
  (* Components actually pinned to a running loop; wiring-time entries
     (domain -1) and the spawning thread (index >= domains) are real
     placements but not loop domains. *)
  let run_components =
    List.filter (fun (_, d) -> d >= 0 && d < p.domains) p.placement
  in
  (* pinned: the lint is meaningless for a component it cannot place. *)
  List.iter
    (fun r ->
      List.iter
        (fun c ->
          if dom_of c = None then
            flag "pinned" r.res c
              "touches the resource but is absent from the pinning plan")
        (List.sort_uniq compare (r.writers @ r.readers @ r.grants)))
    p.resources;
  (* ring-spsc: single producer, single consumer — by component, hence
     a fortiori by domain. *)
  let rings = List.filter (fun r -> r.kind = Ring_buf) p.resources in
  List.iter
    (fun r ->
      if List.length r.writers <> 1 then
        flag "ring-spsc" r.res
          (String.concat "+" r.writers)
          (Printf.sprintf
             "%d producers declared for a single-producer ring — pushes from \
              two domains race on the same tail index"
             (List.length r.writers));
      if List.length r.readers <> 1 then
        flag "ring-spsc" r.res
          (String.concat "+" r.readers)
          (Printf.sprintf
             "%d consumers declared for a single-consumer ring"
             (List.length r.readers)))
    rings;
  (* ring-collapse: producer and consumer on the same domain is safe
     (one domain does both ends) but means the parallelism the plan
     promised is gone; only flagged when a spare domain existed, since
     on 2 domains some collapse is forced by the pigeonhole. *)
  let spread = p.domains >= List.length run_components in
  List.iter
    (fun r ->
      match (r.writers, r.readers) with
      | [ w ], [ c ] when w <> c -> (
          match (dom_of w, dom_of c) with
          | Some dw, Some dc when dw >= 0 && dw = dc && spread ->
              flag "ring-collapse" r.res (w ^ "+" ^ c)
                (Printf.sprintf
                   "producer and consumer both resolve to domain %d although \
                    %d domains are available"
                   dw p.domains)
          | _ -> ())
      | _ -> ())
    rings;
  (* cross-domain: a structure with no sanctioned primitive on it must
     stay on one run-time domain. Wiring-time writers (domain -1) are
     exempt — their writes are published by Domain.spawn — so a table
     filled before the fence and only read afterwards is fine. *)
  let unsync = List.filter (fun r -> r.via = None) p.resources in
  List.iter
    (fun r ->
      let doms cs =
        List.filter_map dom_of cs
        |> List.filter (fun d -> d >= 0)
        |> List.sort_uniq compare
      in
      let wd = doms r.writers in
      let all = doms (r.writers @ r.readers) in
      if wd <> [] && List.length all > 1 then
        flag "cross-domain" r.res
          (String.concat "+" (List.sort_uniq compare (r.writers @ r.readers)))
          (Printf.sprintf
             "unsynchronised %s written on domain%s %s and touched on domains \
              %s — no ring, atomic or mutex on the edge"
             (match r.kind with
             | Ring_buf -> "ring"
             | Pool -> "pool"
             | Inbox -> "inbox"
             | Counter -> "counter"
             | Timer_wheel -> "timer wheel"
             | Table -> "table")
             (if List.length wd > 1 then "s" else "")
             (String.concat "," (List.map string_of_int wd))
             (String.concat "," (List.map string_of_int all))))
    unsync;
  (* pool-owner: writers are the owner plus explicit grants. *)
  let pools = List.filter (fun r -> r.kind = Pool) p.resources in
  List.iter
    (fun r ->
      match r.owner with
      | None -> flag "pool-owner" r.res "unattributed" "pool has no owner"
      | Some o ->
          List.iter
            (fun w ->
              if w <> o && not (List.mem w r.grants) then
                flag "pool-owner" r.res w
                  (Printf.sprintf
                     "writes a pool owned by %s without a grant" o))
            r.writers)
    pools;
  {
    Report.title;
    checks =
      [
        ("pinned", List.length p.resources);
        ("ring-spsc", List.length rings);
        ("ring-collapse", List.length rings);
        ("cross-domain", List.length unsync);
        ("pool-owner", List.length pools);
      ];
    violations = List.rev !violations;
  }

(* ------------------------------------------------------------------ *)
(* Dynamic layer: the vector-clock happens-before detector.           *)
(* ------------------------------------------------------------------ *)

module Dynamic = struct
  type labels = {
    ring_name : int -> string;
    pool_name : int -> string;
    counter_name : int -> string;
    loop_name : int -> string;
  }

  let default_labels =
    {
      ring_name = (fun i -> Printf.sprintf "ring#%d" i);
      pool_name = (fun i -> Printf.sprintf "pool#%d" i);
      counter_name = (fun i -> Printf.sprintf "counter#%d" i);
      loop_name = (fun i -> Printf.sprintf "loop%d" i);
    }

  (* The clock vectors are fixed-size arrays; the native runtime caps
     at 16 domains and the spawner makes 17. *)
  let max_tids = 20

  (* One clock component per registered domain, FastTrack-style: an
     access by tid [t] gets epoch [clocks.(t).(t)]; [t]'s own component
     advances only when [t] releases (so a release made after the
     access carries an epoch >= the access's, and an acquirer of that
     release is ordered after the access). *)

  type loc =
    | L_ring of int * int  (* ring id, ABSOLUTE element index *)
    | L_pool of int * int  (* pool id, slot *)
    | L_counter of int * int

  type sync =
    | S_tail of int  (* push releases, pop acquires *)
    | S_head of int  (* pop releases, push acquires *)
    | S_inbox of int  (* post releases, drain/wake acquire *)
    | S_lock of int
    | S_init  (* spawn fence releases, loop start acquires *)

  type raw_access = {
    a_tid : int;
    a_epoch : int;
    a_seq : int;
    a_write : bool;
    a_stack : Printexc.raw_backtrace;
  }

  type lstate = {
    mutable lw : raw_access option;  (* last write *)
    mutable lr : raw_access list;  (* reads since, one entry per tid *)
    mutable poisoned : bool;  (* already reported: stop the flood *)
  }

  type ends = {
    mutable prod : (int * raw_access) option;
    mutable cons : (int * raw_access) option;
    mutable prod_flagged : bool;
    mutable cons_flagged : bool;
  }

  type raw_race = {
    r_check : string;
    r_loc : loc option;  (* None: ring-discipline, loc is the ring *)
    r_ring : int;  (* meaningful when r_loc = None *)
    r_first : raw_access;
    r_second : raw_access;
    r_trace : (int * int * Hook.nevent) array;  (* seq, tid, event *)
  }

  type state = {
    mu : Mutex.t;
    labels : labels;
    mutable started : bool;  (* spawn fence seen *)
    tids : (int, int) Hashtbl.t;  (* raw Domain.self -> dense tid *)
    names : string array;  (* dense tid -> label *)
    clocks : int array array;
    mutable ntids : int;
    sync : (sync, int array) Hashtbl.t;
    locs : (loc, lstate) Hashtbl.t;
    rings : (int, ends) Hashtbl.t;
    mutable races : raw_race list;
    mutable n_races : int;
    mutable suppressed : int;
    mutable events : int;
    mutable ring_checks : int;
    ring_mask : int;  (* sample the slot checks, never the clocks *)
    max_reports : int;
    sample : int;
    trace : (int * int * Hook.nevent) array;  (* ring buffer *)
    mutable trace_n : int;
  }

  let trace_cap = 256
  let trace_tail = 96

  let dummy_event = Hook.N_spawn_fence

  let make_state ~sample ~max_reports ~labels =
    {
      mu = Mutex.create ();
      labels;
      started = false;
      tids = Hashtbl.create 8;
      names = Array.make max_tids "";
      clocks = Array.init max_tids (fun _ -> Array.make max_tids 0);
      ntids = 0;
      sync = Hashtbl.create 64;
      locs = Hashtbl.create 4096;
      rings = Hashtbl.create 32;
      races = [];
      n_races = 0;
      suppressed = 0;
      events = 0;
      ring_checks = 0;
      ring_mask = sample - 1;
      max_reports;
      sample;
      trace = Array.make trace_cap (0, 0, dummy_event);
      trace_n = 0;
    }

  let st : state option ref = ref None

  let tid_of s =
    let raw = (Domain.self () :> int) in
    match Hashtbl.find_opt s.tids raw with
    | Some t -> t
    | None ->
        let t = s.ntids in
        if t >= max_tids then (* beyond the model: charge everything to
                                 the last slot rather than crash *)
          max_tids - 1
        else begin
          Hashtbl.add s.tids raw t;
          s.ntids <- t + 1;
          (* FastTrack convention: a thread is born at epoch 1 while
             everyone else knows 0 of it, so even its first access —
             before its first release — is unordered for a peer that
             never synchronised with it. *)
          s.clocks.(t).(t) <- 1;
          s.names.(t) <-
            (if t = 0 then "main" else Printf.sprintf "domain#%d" raw);
          t
        end

  let join dst src n =
    for i = 0 to n - 1 do
      if src.(i) > dst.(i) then dst.(i) <- src.(i)
    done

  let acquire s tid key =
    match Hashtbl.find_opt s.sync key with
    | None -> ()
    | Some c -> join s.clocks.(tid) c s.ntids

  let release s tid key =
    let c =
      match Hashtbl.find_opt s.sync key with
      | Some c -> c
      | None ->
          let c = Array.make max_tids 0 in
          Hashtbl.add s.sync key c;
          c
    in
    join c s.clocks.(tid) s.ntids;
    s.clocks.(tid).(tid) <- s.clocks.(tid).(tid) + 1

  let ordered s tid (a : raw_access) =
    a.a_tid = tid || s.clocks.(tid).(a.a_tid) >= a.a_epoch

  let snapshot_trace s =
    let n = min s.trace_n trace_tail in
    let first = s.trace_n - n in
    Array.init n (fun i -> s.trace.((first + i) mod trace_cap))

  let add_race s ~check ~loc ~ring ~first ~second =
    if s.n_races >= s.max_reports then s.suppressed <- s.suppressed + 1
    else begin
      s.n_races <- s.n_races + 1;
      s.races <-
        {
          r_check = check;
          r_loc = loc;
          r_ring = ring;
          r_first = first;
          r_second = second;
          r_trace = snapshot_trace s;
        }
        :: s.races
    end

  let mk_access s tid ~write =
    {
      a_tid = tid;
      a_epoch = s.clocks.(tid).(tid);
      a_seq = s.events;
      a_write = write;
      a_stack = Printexc.get_callstack 16;
    }

  let find_loc s loc =
    match Hashtbl.find_opt s.locs loc with
    | Some l -> l
    | None ->
        let l = { lw = None; lr = []; poisoned = false } in
        Hashtbl.add s.locs loc l;
        l

  (* The FastTrack core: a write must be ordered after the last write
     and after every outstanding read; a read must be ordered after
     the last write. One report per location, then it is poisoned. *)
  let check_access s tid loc ~write =
    let l = find_loc s loc in
    if not l.poisoned then begin
      let a = mk_access s tid ~write in
      let clash prev =
        l.poisoned <- true;
        add_race s ~check:"hb-race" ~loc:(Some loc) ~ring:(-1) ~first:prev
          ~second:a
      in
      (match l.lw with
      | Some w when not (ordered s tid w) -> clash w
      | _ -> ());
      if write then begin
        if not l.poisoned then
          List.iter (fun r -> if not (ordered s tid r) then clash r) l.lr;
        l.lw <- Some a;
        l.lr <- []
      end
      else l.lr <- a :: List.filter (fun r -> r.a_tid <> tid) l.lr
    end

  let find_ring s ring =
    match Hashtbl.find_opt s.rings ring with
    | Some e -> e
    | None ->
        let e =
          { prod = None; cons = None; prod_flagged = false;
            cons_flagged = false }
        in
        Hashtbl.add s.rings ring e;
        e

  (* Dynamic SPSC ownership: claims bind only after the spawn fence
     (wiring pushes run on the spawning thread and would otherwise
     poison every ring's producer end). A claim violation is reported
     regardless of the clock state — two producers are wrong even when
     the particular interleaving happened to be ordered. *)
  let check_producer s tid ring =
    if s.started then begin
      let e = find_ring s ring in
      match e.prod with
      | None -> e.prod <- Some (tid, mk_access s tid ~write:true)
      | Some (owner, first) ->
          if owner <> tid && not e.prod_flagged then begin
            e.prod_flagged <- true;
            add_race s ~check:"ring-producer" ~loc:None ~ring ~first
              ~second:(mk_access s tid ~write:true)
          end
    end

  let check_consumer s tid ring =
    if s.started then begin
      let e = find_ring s ring in
      match e.cons with
      | None -> e.cons <- Some (tid, mk_access s tid ~write:false)
      | Some (owner, first) ->
          if owner <> tid && not e.cons_flagged then begin
            e.cons_flagged <- true;
            add_race s ~check:"ring-consumer" ~loc:None ~ring ~first
              ~second:(mk_access s tid ~write:false)
          end
    end

  let sampled_ring_check s =
    let n = s.ring_checks in
    s.ring_checks <- n + 1;
    n land s.ring_mask = 0

  let on_event s ev =
    Mutex.lock s.mu;
    (try
       let tid = tid_of s in
       s.events <- s.events + 1;
       s.trace.(s.trace_n mod trace_cap) <- (s.events, tid, ev);
       s.trace_n <- s.trace_n + 1;
       (match ev with
       | Hook.N_ring_push { ring; index } ->
           (* Order matters within the event: acquire the head (slot
              reuse edge), then the slot check at the current clock,
              then release the tail — mirroring that the real release
              store happens after the slot write. *)
           acquire s tid (S_head ring);
           check_producer s tid ring;
           if sampled_ring_check s then
             check_access s tid (L_ring (ring, index)) ~write:true;
           release s tid (S_tail ring)
       | Hook.N_ring_pop { ring; index } ->
           acquire s tid (S_tail ring);
           check_consumer s tid ring;
           if sampled_ring_check s then
             check_access s tid (L_ring (ring, index)) ~write:false;
           release s tid (S_head ring)
       | Hook.N_post { loop } -> release s tid (S_inbox loop)
       | Hook.N_drain { loop } -> acquire s tid (S_inbox loop)
       | Hook.N_park _ -> ()
       | Hook.N_wake { loop } -> acquire s tid (S_inbox loop)
       | Hook.N_loop_start { loop } ->
           acquire s tid S_init;
           s.names.(tid) <- s.labels.loop_name loop
       | Hook.N_loop_stop _ -> release s tid S_init
       | Hook.N_spawn_fence ->
           s.started <- true;
           release s tid S_init
       | Hook.N_lock { lock; acquire = acq } ->
           if acq then acquire s tid (S_lock lock)
           else release s tid (S_lock lock)
       | Hook.N_access { kind; id; sub; write } ->
           let loc =
             match kind with
             | Hook.N_pool_slot -> L_pool (id, sub)
             | Hook.N_counter -> L_counter (id, sub)
           in
           check_access s tid loc ~write)
     with e ->
       Mutex.unlock s.mu;
       raise e);
    Mutex.unlock s.mu

  let arm ?(sample = 1) ?(max_reports = 16) ?(labels = default_labels) () =
    let rec pow2 p n = if p >= n then p else pow2 (p * 2) n in
    let sample = pow2 1 (max 1 sample) in
    let s = make_state ~sample ~max_reports ~labels in
    st := Some s;
    (* Register the arming thread as tid 0 = "main". *)
    Mutex.lock s.mu;
    ignore (tid_of s);
    Mutex.unlock s.mu;
    Hook.set_native ~sample (fun ev ->
        match !st with Some s -> on_event s ev | None -> ())

  let armed () = !st <> None
  let fence () = Hook.native_emit Hook.N_spawn_fence

  type access_view = {
    who : string;
    what : string;
    seq : int;
    stack : string list;
  }

  type race_view = {
    check : string;
    loc : string;
    first : access_view;
    second : access_view;
    trace : string list;
  }

  type outcome = {
    races : race_view list;
    suppressed : int;
    events : int;
    accesses_seen : int;
    accesses_kept : int;
    sample : int;
    domains_seen : int;
    locations : int;
    sync_objects : int;
    overhead_cycles : int;
  }

  (* Same modelled-cost family as Sanitizer.overhead_cycles: a flat
     per-delivered-event charge, plus the cheap sampled-out access
     test (one atomic add + one AND). *)
  let cycles_per_event = 120
  let cycles_per_skipped_access = 4

  let loc_label lb = function
    | L_ring (r, i) -> Printf.sprintf "%s element %d" (lb.ring_name r) i
    | L_pool (p, sl) -> Printf.sprintf "%s slot %d" (lb.pool_name p) sl
    | L_counter (c, sub) ->
        if sub = 0 then lb.counter_name c
        else Printf.sprintf "%s[%d]" (lb.counter_name c) sub

  let event_label lb = function
    | Hook.N_ring_push { ring; index } ->
        Printf.sprintf "push %s idx %d" (lb.ring_name ring) index
    | Hook.N_ring_pop { ring; index } ->
        Printf.sprintf "pop %s idx %d" (lb.ring_name ring) index
    | Hook.N_post { loop } -> Printf.sprintf "post -> %s" (lb.loop_name loop)
    | Hook.N_drain { loop } -> Printf.sprintf "drain %s" (lb.loop_name loop)
    | Hook.N_park { loop } -> Printf.sprintf "park %s" (lb.loop_name loop)
    | Hook.N_wake { loop } -> Printf.sprintf "wake %s" (lb.loop_name loop)
    | Hook.N_loop_start { loop } ->
        Printf.sprintf "start %s" (lb.loop_name loop)
    | Hook.N_loop_stop { loop } -> Printf.sprintf "stop %s" (lb.loop_name loop)
    | Hook.N_spawn_fence -> "spawn-fence"
    | Hook.N_lock { lock; acquire } ->
        Printf.sprintf "%s %s"
          (if acquire then "lock" else "unlock")
          (lb.pool_name lock)
    | Hook.N_access { kind; id; sub; write } ->
        Printf.sprintf "%s %s"
          (if write then "write" else "read")
          (loc_label lb
             (match kind with
             | Hook.N_pool_slot -> L_pool (id, sub)
             | Hook.N_counter -> L_counter (id, sub)))

  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0

  let stack_lines bt =
    let all =
      Printexc.raw_backtrace_to_string bt
      |> String.split_on_char '\n'
      |> List.filter (fun l -> String.trim l <> "")
    in
    (* The innermost frames are the detector and the hook themselves;
       drop them so the first line names the access site. If no frame
       survives (no debug info compiled in), keep the raw stack. *)
    let internal l =
      contains l "Newt_verify__Race" || contains l "Newt_channels__Hook"
    in
    match List.filter (fun l -> not (internal l)) all with
    | [] -> all
    | outer -> outer

  let view_access s what (a : raw_access) =
    {
      who = s.names.(a.a_tid);
      what;
      seq = a.a_seq;
      stack = stack_lines a.a_stack;
    }

  let what_of loc (a : raw_access) =
    match loc with
    | Some (L_ring _) -> if a.a_write then "ring push" else "ring pop"
    | Some (L_pool _) -> if a.a_write then "pool write" else "pool read"
    | Some (L_counter _) ->
        if a.a_write then "counter write" else "counter read"
    | None -> if a.a_write then "ring push" else "ring pop"

  let view_race s (r : raw_race) =
    let loc =
      match r.r_loc with
      | Some l -> loc_label s.labels l
      | None -> s.labels.ring_name r.r_ring
    in
    {
      check = r.r_check;
      loc;
      first = view_access s (what_of r.r_loc r.r_first) r.r_first;
      second = view_access s (what_of r.r_loc r.r_second) r.r_second;
      trace =
        Array.to_list r.r_trace
        |> List.map (fun (seq, tid, ev) ->
               Printf.sprintf "#%d [%s] %s" seq s.names.(tid)
                 (event_label s.labels ev));
    }

  let disarm () =
    Hook.clear_native ();
    match !st with
    | None ->
        {
          races = [];
          suppressed = 0;
          events = 0;
          accesses_seen = 0;
          accesses_kept = 0;
          sample = 1;
          domains_seen = 0;
          locations = 0;
          sync_objects = 0;
          overhead_cycles = 0;
        }
    | Some s ->
        st := None;
        let seen, kept = Hook.native_access_counts () in
        Mutex.lock s.mu;
        let races = List.rev_map (view_race s) s.races in
        let out =
          {
            races;
            suppressed = s.suppressed;
            events = s.events;
            accesses_seen = seen;
            accesses_kept = kept;
            sample = s.sample;
            domains_seen = s.ntids;
            locations = Hashtbl.length s.locs;
            sync_objects = Hashtbl.length s.sync;
            overhead_cycles =
              (s.events * cycles_per_event)
              + ((seen - kept) * cycles_per_skipped_access);
          }
        in
        Mutex.unlock s.mu;
        out

  let ok o = o.races = [] && o.suppressed = 0

  let short_stack a =
    match a.stack with [] -> "<no frames>" | l :: _ -> String.trim l

  let report ~title (o : outcome) : Report.t =
    let violations =
      List.map
        (fun r ->
          {
            Report.check = r.check;
            subject = r.loc;
            culprit = Printf.sprintf "%s vs %s" r.first.who r.second.who;
            detail =
              Printf.sprintf
                "%s by %s (#%d, %s) is unordered with %s by %s (#%d, %s)"
                r.first.what r.first.who r.first.seq (short_stack r.first)
                r.second.what r.second.who r.second.seq (short_stack r.second);
          })
        o.races
    in
    let violations =
      if o.suppressed = 0 then violations
      else
        violations
        @ [
            {
              Report.check = "hb-race";
              subject = "(report cap)";
              culprit = "detector";
              detail =
                Printf.sprintf "%d further races suppressed after the cap"
                  o.suppressed;
            };
          ]
    in
    {
      Report.title;
      checks =
        [
          ("hb-race", o.locations);
          ("ring-owner", o.sync_objects);
          ("sampled-access", o.accesses_kept);
        ];
      violations;
    }

  let to_json ~title (o : outcome) =
    let b = Buffer.create 4096 in
    let esc = Report.json_escape in
    Buffer.add_string b
      (Printf.sprintf "{\"title\":\"%s\",\"ok\":%b" (esc title) (ok o));
    Buffer.add_string b
      (Printf.sprintf
         ",\"checks\":{\"hb-race\":%d,\"ring-owner\":%d,\"sampled-access\":%d}"
         o.locations o.sync_objects o.accesses_kept);
    (* The unified violations shape shared with Report.to_json. *)
    Buffer.add_string b ",\"violations\":[";
    List.iteri
      (fun i r ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf
             "{\"check\":\"%s\",\"subject\":\"%s\",\"culprit\":\"%s\",\"detail\":\"%s\"}"
             (esc r.check) (esc r.loc)
             (esc (Printf.sprintf "%s vs %s" r.first.who r.second.who))
             (esc
                (Printf.sprintf "%s (#%d) unordered with %s (#%d)" r.first.what
                   r.first.seq r.second.what r.second.seq))))
      o.races;
    Buffer.add_string b "]";
    (* The mcheck-style counterexamples: full stacks + replayable trace. *)
    let access_json a =
      Printf.sprintf
        "{\"who\":\"%s\",\"what\":\"%s\",\"seq\":%d,\"stack\":[%s]}" (esc a.who)
        (esc a.what) a.seq
        (String.concat ","
           (List.map (fun l -> Printf.sprintf "\"%s\"" (esc l)) a.stack))
    in
    Buffer.add_string b ",\"counterexamples\":[";
    List.iteri
      (fun i r ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_string b
          (Printf.sprintf
             "{\"check\":\"%s\",\"loc\":\"%s\",\"first\":%s,\"second\":%s,\"trace\":[%s]}"
             (esc r.check) (esc r.loc) (access_json r.first)
             (access_json r.second)
             (String.concat ","
                (List.map
                   (fun l -> Printf.sprintf "\"%s\"" (esc l))
                   r.trace))))
      o.races;
    Buffer.add_string b "]";
    Buffer.add_string b
      (Printf.sprintf
         ",\"counters\":{\"events\":%d,\"accesses_seen\":%d,\"accesses_kept\":%d,\"sample\":%d,\"domains\":%d,\"locations\":%d,\"sync_objects\":%d,\"hook_overhead_cycles\":%d}"
         o.events o.accesses_seen o.accesses_kept o.sample o.domains_seen
         o.locations o.sync_objects o.overhead_cycles);
    Buffer.add_string b
      (Printf.sprintf ",\"races\":%d,\"suppressed\":%d}" (List.length o.races)
         o.suppressed);
    Buffer.contents b
end
