(** [Verify.Race] — concurrency checking for the native runtime.

    The simulator's verifier (static channel graph, sanitizer,
    protocol, mcheck) never sees the native runtime's real
    concurrency: OCaml 5 domains over hand-rolled SPSC rings, a
    spin-then-park doorbell and a granted receive pool. This module
    checks that surface in two cooperating layers:

    {b 1. Static domain-ownership lint} ({!Plan}, {!check_plan}): the
    native pinning plan is lowered to a table of mutable resources —
    rings, pools, inboxes, timer wheels, counters, tables — each with
    its writers, readers and the synchronisation primitive its
    cross-domain edges ride. The lint proves every edge that spans two
    domains goes through a sanctioned primitive (an SPSC ring with
    exactly one producer and one consumer domain, an [Atomic], the
    park mutex, or the pool lock) and flags everything else: a ring
    with two producers, an unsynchronised structure written on one
    domain and touched on another, a pool slot writable off-owner
    without a grant, a producer/consumer pair collapsed onto one
    domain when spare domains existed.

    {b 2. Dynamic vector-clock happens-before checker} ({!Dynamic}):
    consumes the {!Newt_channels.Hook} native event family emitted by
    [Spsc_queue] push/pop, [Loop] post/drain/park/wake and [Pool]
    slot hand-offs, maintains one vector clock per domain joined at
    every release/acquire edge (ring tail and head, inbox mutex, pool
    lock, the spawn fence), and reports any two accesses to the same
    location that are unordered by those edges — with both access
    stacks and a replayable event trace, in the same {!Report} shape
    as the model checker's counterexamples. It additionally enforces
    SPSC ownership dynamically: the first domain to push (pop) a ring
    after the spawn fence claims its producer (consumer) end, and any
    later access from a different domain is flagged even if the
    interleaving happened to be clock-ordered. *)

(** {1 Static layer} *)

module Plan : sig
  (** A sanctioned cross-domain primitive. *)
  type prim =
    | Ring  (** SPSC ring: release on push/tail, acquire on pop. *)
    | Atomic  (** An [Atomic.t] with release/acquire semantics. *)
    | Park_mutex  (** A loop's inbox mutex + condition variable. *)
    | Pool_lock  (** A pool's free-list mutex (native pools only). *)

  type kind = Ring_buf | Pool | Inbox | Counter | Timer_wheel | Table

  type resource = {
    res : string;  (** Display name, e.g. ["ring ip.to_pf"]. *)
    kind : kind;
    owner : string option;  (** Pools: the owning component. *)
    writers : string list;  (** Components that mutate it. *)
    readers : string list;  (** Components that read it. *)
    grants : string list;
        (** Sanctioned non-owner writers (the driver's DMA grant on
            the receive pool). *)
    via : prim option;
        (** The primitive cross-domain edges ride; [None] means the
            structure is claimed domain-local (flagged if its touching
            components resolve to two run-time domains). *)
  }

  type t = {
    domains : int;  (** Run-time domain count. *)
    placement : (string * int) list;
        (** Component → domain. Domain [-1] marks wiring-time-only
            components (their writes are published by [Domain.spawn]);
            an index [>= domains] marks the spawning thread itself,
            which runs concurrently with every loop. *)
    resources : resource list;
  }
end

val check_plan : ?title:string -> Plan.t -> Report.t
(** Run the ownership lint over a pinning plan. Checks: [pinned]
    (every component that touches a resource is placed), [ring-spsc]
    (exactly one producer and one consumer per ring), [ring-collapse]
    (producer and consumer on one domain while spare domains existed —
    safe, but the parallelism the plan promised is gone), [cross-domain]
    (an unsynchronised structure written on one run-time domain and
    touched on another), [pool-owner] (every pool writer is the owner
    or holds a grant). *)

(** {1 Dynamic layer} *)

module Dynamic : sig
  type labels = {
    ring_name : int -> string;
    pool_name : int -> string;
    counter_name : int -> string;
    loop_name : int -> string;
  }
  (** How to render the integer ids carried by native events; the
      native runtime passes its ring/loop naming so counterexamples
      read like the topology. *)

  val default_labels : labels

  type access_view = {
    who : string;  (** Domain label ("main", "loop0 tcp+pf", …). *)
    what : string;  (** "ring push", "pool write", … *)
    seq : int;  (** Global event sequence number. *)
    stack : string list;  (** Captured backtrace, one frame per line. *)
  }

  type race_view = {
    check : string;
        (** ["hb-race"] for an unordered access pair, ["ring-producer"]
            / ["ring-consumer"] for an SPSC ownership violation. *)
    loc : string;  (** The contested location. *)
    first : access_view;
    second : access_view;
    trace : string list;
        (** The tail of the global event trace up to detection — the
            replayable interleaving, mcheck-counterexample style. *)
  }

  type outcome = {
    races : race_view list;
    suppressed : int;
        (** Races beyond the report cap, counted but not recorded. *)
    events : int;  (** Sync + access events processed. *)
    accesses_seen : int;  (** {!Newt_channels.Hook.native_access} calls. *)
    accesses_kept : int;  (** … of which survived sampling. *)
    sample : int;  (** Effective power-of-two sampling period. *)
    domains_seen : int;
    locations : int;  (** Distinct locations tracked. *)
    sync_objects : int;  (** Distinct clocks (rings ×2, inboxes, locks). *)
    overhead_cycles : int;
        (** Modelled instrumentation cost, same accounting family as
            [Sanitizer.overhead_cycles]. *)
  }

  val arm : ?sample:int -> ?max_reports:int -> ?labels:labels -> unit -> unit
  (** Install the detector as the native hook listener and reset all
      state. [sample] (default 1, rounded up to a power of two)
      additionally samples the detector's own ring-slot checks; clock
      joins are never sampled (sampling can hide a race, never invent
      one). Call from the spawning thread before wiring. *)

  val armed : unit -> bool

  val fence : unit -> unit
  (** Emit the spawn fence: wiring is done, loops are about to spawn.
      Ring ownership claims start after this point. *)

  val disarm : unit -> outcome
  (** Uninstall the listener and return everything found. *)

  val ok : outcome -> bool

  val report : title:string -> outcome -> Report.t
  (** The unified verifier shape: one violation per race, culprit =
      the two domains, detail carries both (truncated) stacks. *)

  val to_json : title:string -> outcome -> string
  (** Machine shape shared with verify/mcheck: top-level
      ["ok"]/["checks"]/["violations"] as in {!Report.to_json}, plus
      ["counterexamples"] carrying full stacks and the event trace
      (mcheck-style) and a ["counters"] block with the sampling and
      overhead accounting. *)
end
