type violation = {
  check : string;
  subject : string;
  culprit : string;
  detail : string;
}

type t = {
  title : string;
  checks : (string * int) list;
  violations : violation list;
}

let ok t = t.violations = []

(* One exit-code convention across verify / mcheck / race so CI and
   bench-smoke can treat every checker alike: 0 clean, 1 violations.
   (2 is reserved by the CLI for unusable configurations.) *)
let exit_code t = if ok t then 0 else 1

let merge ~title reports =
  let checks =
    List.fold_left
      (fun acc r ->
        List.fold_left
          (fun acc (name, n) ->
            match List.assoc_opt name acc with
            | Some m -> (name, m + n) :: List.remove_assoc name acc
            | None -> acc @ [ (name, n) ])
          acc r.checks)
      [] reports
  in
  {
    title;
    checks;
    violations = List.concat_map (fun r -> r.violations) reports;
  }

let pp fmt t =
  Format.fprintf fmt "verifier: %s@." t.title;
  List.iter
    (fun (name, n) ->
      Format.fprintf fmt "  %-18s %4d subject%s checked@." name n
        (if n = 1 then "" else "s"))
    t.checks;
  (match t.violations with
  | [] -> Format.fprintf fmt "  OK: no violations@."
  | vs ->
      Format.fprintf fmt "  %d VIOLATION%s:@." (List.length vs)
        (if List.length vs = 1 then "" else "S");
      List.iter
        (fun v ->
          Format.fprintf fmt "  [%s] %s — culprit %s: %s@." v.check v.subject
            v.culprit v.detail)
        vs);
  ()

let to_string t = Format.asprintf "%a" pp t

(* Hand-rolled JSON: the string set is small and we must not pull in a
   json dependency for it. *)
let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let to_json t =
  let buf = Buffer.create 256 in
  Buffer.add_string buf
    (Printf.sprintf "{\"title\":\"%s\",\"ok\":%b,\"checks\":{"
       (json_escape t.title) (ok t));
  List.iteri
    (fun i (name, n) ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf (Printf.sprintf "\"%s\":%d" (json_escape name) n))
    t.checks;
  Buffer.add_string buf "},\"violations\":[";
  List.iteri
    (fun i v ->
      if i > 0 then Buffer.add_char buf ',';
      Buffer.add_string buf
        (Printf.sprintf
           "{\"check\":\"%s\",\"subject\":\"%s\",\"culprit\":\"%s\",\"detail\":\"%s\"}"
           (json_escape v.check) (json_escape v.subject) (json_escape v.culprit)
           (json_escape v.detail)))
    t.violations;
  Buffer.add_string buf "]}";
  Buffer.contents buf
