(** Verifier verdicts.

    Both prongs of the stack verifier — the static channel-graph
    checker and the dynamic pool-ownership sanitizer — speak this one
    result type: a list of checks with how many subjects each examined,
    and a list of violations, each attributed to a culprit component.
    The report renders human-readable (for the CLI) and as JSON (for
    CI). *)

type violation = {
  check : string;  (** Which rule fired, e.g. ["spsc"] or ["double-free"]. *)
  subject : string;  (** What was being checked, e.g. a channel name. *)
  culprit : string;  (** The offending component (or ["unattributed"]). *)
  detail : string;  (** Human-readable explanation. *)
}

type t = {
  title : string;
  checks : (string * int) list;
      (** [(check name, subjects examined)], in execution order. *)
  violations : violation list;
}

val ok : t -> bool
(** No violations. *)

val exit_code : t -> int
(** The process exit code every checker CLI uses: 0 when {!ok}, 1 on
    violations. Exit 2 is reserved for unusable configurations (the
    native no-silent-fallback guard), so a scripted caller can tell
    "found a bug" from "could not check". *)

val merge : title:string -> t list -> t
(** Concatenate several reports (e.g. static + sanitizer) under one
    title; per-check subject counts of the same check name are summed. *)

val pp : Format.formatter -> t -> unit
(** Readable multi-line rendering: one line per check with its subject
    count, then one block per violation. *)

val to_string : t -> string

val to_json : t -> string
(** Machine-readable verdict:
    [{"title":…,"ok":…,"checks":{…},"violations":[…]}]. *)

val json_escape : string -> string
(** Escape a string for embedding in the hand-rolled JSON (also used
    by the model checker's counterexample traces). *)
