module Hook = Newt_channels.Hook
module Rich_ptr = Newt_channels.Rich_ptr

type violation =
  | Double_free of { ptr : Rich_ptr.t; actor : string option }
  | Free_in_flight of {
      pool : int;
      slot : int;
      actor : string option;
      in_flight : int;
    }
  | Non_owner_write of {
      pool : int;
      slot : int;
      actor : string;
      owner : string;
    }
  | Cross_incarnation_free of {
      pool : int;
      slot : int;
      actor : string;
      alloc_epoch : int;
      free_epoch : int;
    }

type leak = {
  pool : int;
  slot : int;
  allocator : string option;
  holder : string option;
}

(* Shadow state for one live slot. *)
type slot_state = {
  mutable allocator : string option;
  mutable alloc_epoch : int;  (* the allocator's incarnation *)
  mutable holder : string option;
  mutable in_flight : int;  (* queued channel messages referencing it *)
}

let owners : (int, string) Hashtbl.t = Hashtbl.create 16
let granted : (int, unit) Hashtbl.t = Hashtbl.create 16
let slots : (int * int, slot_state) Hashtbl.t = Hashtbl.create 1024
let viols : violation list ref = ref []
let stales = ref 0
let allocs = ref 0
let frees = ref 0
let handoffs = ref 0
let events = ref 0
let running = ref false

(* What one shadow update costs in model cycles had the hook run
   inline in the stack proper (a hash probe or two): the accounting
   constant behind {!overhead_cycles}. *)
let cycles_per_event = 40

let clear () =
  Hashtbl.reset owners;
  Hashtbl.reset granted;
  Hashtbl.reset slots;
  viols := [];
  stales := 0;
  allocs := 0;
  frees := 0;
  handoffs := 0;
  events := 0

let record v = viols := v :: !viols

let on_event ~actor ev =
  incr events;
  match ev with
  | Hook.Pool_own { pool; owner } -> Hashtbl.replace owners pool owner
  | Hook.Pool_grant { pool } -> Hashtbl.replace granted pool ()
  | Hook.Pool_alloc { pool; slot; gen = _ } ->
      incr allocs;
      Hashtbl.replace slots (pool, slot)
        {
          allocator = actor;
          alloc_epoch = Hook.epoch ();
          holder = actor;
          in_flight = 0;
        }
  | Hook.Pool_write { pool; slot; gen = _ } -> (
      match (actor, Hashtbl.find_opt owners pool) with
      | Some a, Some owner when a <> owner && not (Hashtbl.mem granted pool) ->
          record (Non_owner_write { pool; slot; actor = a; owner })
      | _ -> ())
  | Hook.Pool_read _ -> ()
  | Hook.Pool_free { pool; slot; gen = _ } -> (
      incr frees;
      match Hashtbl.find_opt slots (pool, slot) with
      | Some st ->
          if st.in_flight > 0 then
            record
              (Free_in_flight { pool; slot; actor; in_flight = st.in_flight });
          (* A slot allocated by incarnation [k] of a server and freed
             by incarnation [k+1] of the same name survived a crash the
             generic teardown should have reclaimed it in — suspect
             even when pool generations line up. DMA-granted pools are
             exempt: their ring slots are device-held and legitimately
             straddle the driver's incarnations. *)
          (match (actor, st.allocator) with
          | Some a, Some alloc_name
            when a = alloc_name
                 && Hook.epoch () > st.alloc_epoch
                 && not (Hashtbl.mem granted pool) ->
              record
                (Cross_incarnation_free
                   {
                     pool;
                     slot;
                     actor = a;
                     alloc_epoch = st.alloc_epoch;
                     free_epoch = Hook.epoch ();
                   })
          | _ -> ());
          Hashtbl.remove slots (pool, slot)
      | None -> ())
  | Hook.Pool_free_all { pool } ->
      (* The owner died; the whole pool is reclaimed by design. *)
      let stale_keys =
        Hashtbl.fold
          (fun (p, s) _ acc -> if p = pool then (p, s) :: acc else acc)
          slots []
      in
      List.iter (Hashtbl.remove slots) stale_keys
  | Hook.Pool_double_free { ptr } -> record (Double_free { ptr; actor })
  | Hook.Pool_stale _ -> incr stales
  | Hook.Chan_handoff { chan = _; ptr } -> (
      incr handoffs;
      match Hashtbl.find_opt slots (ptr.Rich_ptr.pool, ptr.Rich_ptr.slot) with
      | Some st -> st.in_flight <- st.in_flight + 1
      | None -> ())
  | Hook.Chan_receive { chan = _; ptr } -> (
      match Hashtbl.find_opt slots (ptr.Rich_ptr.pool, ptr.Rich_ptr.slot) with
      | Some st ->
          if st.in_flight > 0 then st.in_flight <- st.in_flight - 1;
          st.holder <- actor
      | None -> ())
  | Hook.Chan_dropped { chan = _; ptr } -> (
      match Hashtbl.find_opt slots (ptr.Rich_ptr.pool, ptr.Rich_ptr.slot) with
      | Some st -> if st.in_flight > 0 then st.in_flight <- st.in_flight - 1
      | None -> ())
  | Hook.Req_submit _ | Hook.Req_confirm _ | Hook.Req_abort _ | Hook.Req_reset _
  | Hook.Msg_req _ | Hook.Msg_conf _ ->
      (* Protocol-level events belong to Verify.Protocol. *)
      ()

let install () =
  clear ();
  running := true;
  Hook.install on_event

let uninstall () =
  running := false;
  Hook.uninstall ()

let active () = !running
let reset () = clear ()
let violations () = List.rev !viols
let stale_count () = !stales
let alloc_count () = !allocs
let free_count () = !frees
let handoff_count () = !handoffs
let event_count () = !events
let overhead_cycles () = !events * cycles_per_event

let leaks () =
  Hashtbl.fold
    (fun (pool, slot) st acc ->
      if Hashtbl.mem granted pool then acc
      else { pool; slot; allocator = st.allocator; holder = st.holder } :: acc)
    slots []
  |> List.sort compare

let pool_owner pool = Hashtbl.find_opt owners pool

let who = function Some a -> a | None -> "unattributed"

let describe = function
  | Double_free { ptr; actor } ->
      {
        Report.check = "double-free";
        subject =
          Printf.sprintf "pool %d slot %d" ptr.Rich_ptr.pool ptr.Rich_ptr.slot;
        culprit = who actor;
        detail = "slot freed twice";
      }
  | Free_in_flight { pool; slot; actor; in_flight } ->
      {
        Report.check = "free-in-flight";
        subject = Printf.sprintf "pool %d slot %d" pool slot;
        culprit = who actor;
        detail =
          Printf.sprintf "freed while %d queued message%s still reference it"
            in_flight
            (if in_flight = 1 then "" else "s");
      }
  | Non_owner_write { pool; slot; actor; owner } ->
      {
        Report.check = "non-owner-write";
        subject = Printf.sprintf "pool %d slot %d" pool slot;
        culprit = actor;
        detail =
          Printf.sprintf "write into %s's pool without a grant" owner;
      }
  | Cross_incarnation_free { pool; slot; actor; alloc_epoch; free_epoch } ->
      {
        Report.check = "cross-incarnation-free";
        subject = Printf.sprintf "pool %d slot %d" pool slot;
        culprit = actor;
        detail =
          Printf.sprintf
            "allocated by incarnation %d but freed by incarnation %d of the \
             same server — the slot leaked across a crash reclaim"
            alloc_epoch free_epoch;
      }

let describe_leak (l : leak) =
  {
    Report.check = "leak";
    subject = Printf.sprintf "pool %d slot %d" l.pool l.slot;
    culprit = who (match l.holder with Some _ as h -> h | None -> l.allocator);
    detail = "slot still allocated at end of run";
  }

let report ?(check_leaks = false) ~title () =
  let vs = List.map describe (violations ()) in
  let vs = if check_leaks then vs @ List.map describe_leak (leaks ()) else vs in
  {
    Report.title;
    checks =
      [
        ("allocations", !allocs);
        ("frees", !frees);
        ("hand-offs", !handoffs);
        ("stale-derefs", !stales);
      ];
    violations = vs;
  }
