(** Pool-ownership sanitizer.

    An ASan-style dynamic checker for the zero-copy buffer discipline:
    installed on the {!Newt_channels.Hook} event stream, it shadows
    every pool slot's lifecycle — allocation, hand-off over channels,
    receipt, free — together with the identity of the server performing
    each step, and flags the misuses the rich-pointer design is
    supposed to make impossible:

    - {b double-free}: a slot freed twice with [Pool.free] (crash
      reclaim via [free_all] is the owner dying, not a bug — a
      subsequent [free] of such a slot is an ordinary stale pointer the
      recovery paths already absorb);
    - {b free-in-flight}: a slot freed while a message referencing it
      is still queued on some channel — the consumer would dereference
      freed memory;
    - {b non-owner-write}: a server writing into a pool it neither owns
      nor was granted (the driver's DMA grant, {!Hook.event.Pool_grant},
      whitelists the receive pool by design);
    - {b leak}: slots still allocated when {!leaks} is called, in pools
      that were not DMA-granted (a granted pool legitimately keeps its
      receive ring populated).

    Stale-pointer dereferences are {e recorded} ({!stale_count}) but are
    not violations: after a crash they are the designed detection
    mechanism, not a bug (Section IV-D).

    Install the sanitizer {e before} wiring the stack so it captures
    pool-ownership announcements, then [reset] between runs. State is
    global, like the hook itself: the simulator is single-threaded. *)

type violation =
  | Double_free of { ptr : Newt_channels.Rich_ptr.t; actor : string option }
  | Free_in_flight of {
      pool : int;
      slot : int;
      actor : string option;
      in_flight : int;  (** Queued messages still referencing the slot. *)
    }
  | Non_owner_write of {
      pool : int;
      slot : int;
      actor : string;
      owner : string;
    }
  | Cross_incarnation_free of {
      pool : int;
      slot : int;
      actor : string;  (** The server name (same for alloc and free). *)
      alloc_epoch : int;  (** Incarnation that allocated the slot. *)
      free_epoch : int;  (** Incarnation that freed it (> alloc_epoch). *)
    }
      (** A slot allocated by incarnation [k] of a server and freed by a
          {e later} incarnation of the same server: the generic crash
          teardown should have reclaimed it wholesale, so even when pool
          generations line up the free is suspect. DMA-granted pools are
          exempt (device-held ring slots legitimately straddle driver
          incarnations). *)

type leak = {
  pool : int;
  slot : int;
  allocator : string option;  (** Who allocated it. *)
  holder : string option;  (** Who received it last. *)
}

val install : unit -> unit
(** Install on the global hook (replacing any previous listener) and
    reset all shadow state. *)

val uninstall : unit -> unit
val active : unit -> bool

val reset : unit -> unit
(** Clear shadow state and recorded violations, keep listening. *)

val violations : unit -> violation list
(** In occurrence order. *)

val stale_count : unit -> int
(** Stale-pointer dereferences observed (expected during recovery). *)

val alloc_count : unit -> int
val free_count : unit -> int
val handoff_count : unit -> int

val event_count : unit -> int
(** Total hook events replayed since install/reset. *)

val overhead_cycles : unit -> int
(** Model-cycle cost of the hook instrumentation: {!event_count} times a
    fixed per-event constant (a shadow-table probe). Pure accounting —
    the cycles are {e not} charged to any simulated core — surfaced in
    the bench output so hook-cost regressions stay visible. *)

val leaks : unit -> leak list
(** Slots currently allocated in non-granted pools. Meaningful once the
    run has quiesced; buffers legitimately in flight count until their
    consumer frees them. *)

val pool_owner : int -> string option
(** The component that registered the pool, if the sanitizer saw it. *)

val describe : violation -> Report.violation
val describe_leak : leak -> Report.violation

val report : ?check_leaks:bool -> title:string -> unit -> Report.t
(** Assemble a {!Report.t} from the recorded violations; with
    [check_leaks] (default false) outstanding {!leaks} are added as
    ["leak"] violations. *)
