module Component = Newt_stack.Component
module Sim_chan = Newt_channels.Sim_chan
module Pubsub = Newt_channels.Pubsub
module Pool = Newt_channels.Pool
module Cpu = Newt_hw.Cpu

type sharding = {
  shards : int;
  replicas : int;
  rss_table : int array;
  shard_to_ip : int array;
  ip_to_shard : int array;
  replica_names : string array;
  shard_names : string array;
  (* The packet-filter partition: [pf_shards = 0] means the stack runs
     without a filter and the PF checks are skipped. *)
  pf_shards : int;
  pf_names : string array;
  ip_to_pf : int array array;
  pf_to_ip : int array array;
}

(* One component's claim on one end of a channel. *)
type endpoint = { comp : string; core : int }

type chan_info = {
  mutable consumers : endpoint list;
  mutable exclusive : endpoint list;  (* sole-producer claims *)
  mutable shared : endpoint list;  (* declared fan-out producers *)
  mutable blockers : endpoint list;  (* producers with `Block policy *)
  mutable keys : (string * string) list;  (* (exporter, directory key) *)
}

let fresh_info () =
  { consumers = []; exclusive = []; shared = []; blockers = []; keys = [] }

let check ?directory ?sharding ?(title = "static channel graph")
    (components : Component.t list) =
  let chans : (int, chan_info) Hashtbl.t = Hashtbl.create 64 in
  let info id =
    match Hashtbl.find_opt chans id with
    | Some i -> i
    | None ->
        let i = fresh_info () in
        Hashtbl.add chans id i;
        i
  in
  let violations = ref [] in
  let checks = ref [] in
  let flag check ~subject ~culprit detail =
    violations :=
      { Report.check; subject; culprit; detail } :: !violations
  in
  let count name n = checks := (name, n) :: !checks in
  (* Build the topology from the components' declarations. *)
  List.iter
    (fun c ->
      let ep = { comp = Component.name c; core = Cpu.id (Component.core c) } in
      List.iter
        (fun ch ->
          let i = info (Sim_chan.id ch) in
          i.consumers <- i.consumers @ [ ep ])
        (Component.consumed c);
      List.iter
        (fun (ch, policy, shared) ->
          let i = info (Sim_chan.id ch) in
          if shared then i.shared <- i.shared @ [ ep ]
          else i.exclusive <- i.exclusive @ [ ep ];
          if policy = `Block then i.blockers <- i.blockers @ [ ep ])
        (Component.produced c);
      List.iter
        (fun (key, ch) ->
          let i = info (Sim_chan.id ch) in
          i.keys <- i.keys @ [ (ep.comp, key) ])
        (Component.exports c))
    components;
  let chan_name id =
    match Hashtbl.find_opt chans id with
    | Some { keys = (_, key) :: _; _ } -> Printf.sprintf "chan %d (%s)" id key
    | _ -> Printf.sprintf "chan %d" id
  in
  let names eps = String.concat ", " (List.map (fun e -> e.comp) eps) in
  (* spsc: one consumer, at most one exclusive producer, and every
     produced channel actually drained by someone. *)
  Hashtbl.iter
    (fun id i ->
      let subject = chan_name id in
      (match i.consumers with
      | [ _ ] -> ()
      | [] ->
          if i.exclusive <> [] || i.shared <> [] then
            flag "spsc" ~subject
              ~culprit:(names (i.exclusive @ i.shared))
              "produced but consumed by nobody"
      | cs ->
          flag "spsc" ~subject ~culprit:(names cs)
            (Printf.sprintf "%d consumers on a single-consumer queue"
               (List.length cs)));
      (match i.exclusive with
      | [] | [ _ ] -> ()
      | ps ->
          flag "spsc" ~subject ~culprit:(names ps)
            (Printf.sprintf "%d exclusive producers on a single-producer queue"
               (List.length ps)));
      if i.consumers <> [] && i.exclusive = [] && i.shared = [] && i.keys <> []
      then
        (* A consumed, exported channel nobody ever declared producing:
           the wiring forgot a [Component.produce] or the channel is
           dead weight. *)
        flag "spsc" ~subject ~culprit:(names i.consumers)
          "consumed but produced by nobody")
    chans;
  count "spsc" (Hashtbl.length chans);
  (* core-affinity: both ends of a channel on one core defeats the
     dedicated-core design. *)
  let pairs = ref 0 in
  Hashtbl.iter
    (fun id i ->
      List.iter
        (fun p ->
          List.iter
            (fun c ->
              incr pairs;
              if p.core = c.core && p.comp <> c.comp then
                flag "core-affinity" ~subject:(chan_name id)
                  ~culprit:(Printf.sprintf "%s, %s" p.comp c.comp)
                  (Printf.sprintf "producer and consumer share core %d" p.core))
            i.consumers)
        (i.exclusive @ i.shared))
    chans;
  count "core-affinity" !pairs;
  (* export-owner: the export must belong to the channel's consumer. *)
  let exports = ref 0 in
  Hashtbl.iter
    (fun id i ->
      List.iter
        (fun (exporter, key) ->
          incr exports;
          match i.consumers with
          | [] -> ()
          | cs when List.exists (fun c -> c.comp = exporter) cs -> ()
          | cs ->
              flag "export-owner"
                ~subject:(Printf.sprintf "chan %d (%s)" id key)
                ~culprit:exporter
                (Printf.sprintf
                   "exported by %s but consumed by %s — only the consumer can \
                    republish after its restart"
                   exporter (names cs)))
        i.keys)
    chans;
  count "export-owner" !exports;
  (* republish: the directory must resolve every export to the wired
     channel, and no key may be claimed twice. *)
  (match directory with
  | None -> ()
  | Some dir ->
      let seen : (string, string) Hashtbl.t = Hashtbl.create 64 in
      let n = ref 0 in
      List.iter
        (fun c ->
          List.iter
            (fun (key, ch) ->
              incr n;
              (match Hashtbl.find_opt seen key with
              | Some other ->
                  flag "republish" ~subject:key
                    ~culprit:(Printf.sprintf "%s, %s" other (Component.name c))
                    "directory key exported by two components"
              | None -> Hashtbl.add seen key (Component.name c));
              match Pubsub.lookup dir ~key with
              | None ->
                  flag "republish" ~subject:key ~culprit:(Component.name c)
                    "export missing from the directory (lost across a restart?)"
              | Some pub ->
                  if pub.Pubsub.chan_id <> Sim_chan.id ch then
                    flag "republish" ~subject:key ~culprit:(Component.name c)
                      (Printf.sprintf
                         "directory resolves to chan %d but the wired channel \
                          is %d"
                         pub.Pubsub.chan_id (Sim_chan.id ch)))
            (Component.exports c))
        components;
      count "republish" !n);
  (* blocking-cycle: an edge producer→consumer for every `Block
     endpoint; any cycle can deadlock the whole stack. *)
  let edges : (string, (string * int) list) Hashtbl.t = Hashtbl.create 16 in
  Hashtbl.iter
    (fun id i ->
      List.iter
        (fun p ->
          List.iter
            (fun c ->
              let prev =
                match Hashtbl.find_opt edges p.comp with
                | Some l -> l
                | None -> []
              in
              Hashtbl.replace edges p.comp (prev @ [ (c.comp, id) ]))
            i.consumers)
        i.blockers)
    chans;
  let color : (string, [ `Visiting | `Done ]) Hashtbl.t = Hashtbl.create 16 in
  let cycle_found = ref false in
  let rec dfs path comp =
    match Hashtbl.find_opt color comp with
    | Some `Done -> ()
    | Some `Visiting ->
        if not !cycle_found then begin
          cycle_found := true;
          let rec from_entry = function
            | [] -> []
            | c :: rest when c = comp -> c :: rest
            | _ :: rest -> from_entry rest
          in
          let cycle =
            match from_entry (List.rev path) with
            | [] -> [ comp ]
            | l -> l @ [ comp ]
          in
          flag "blocking-cycle"
            ~subject:(String.concat " -> " cycle)
            ~culprit:comp
            "blocking-wait cycle: every server on it can deadlock waiting for \
             a full queue to drain"
        end
    | None ->
        Hashtbl.replace color comp `Visiting;
        (match Hashtbl.find_opt edges comp with
        | Some succs -> List.iter (fun (c, _) -> dfs (comp :: path) c) succs
        | None -> ());
        Hashtbl.replace color comp `Done
  in
  List.iter (fun c -> dfs [] (Component.name c)) components;
  count "blocking-cycle" (List.length components);
  (* pool-owner: a pool freed wholesale by two dying components would
     double-free every slot. *)
  let pool_owners : (int, string list) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun c ->
      List.iter
        (fun p ->
          let id = Pool.id p in
          let prev =
            match Hashtbl.find_opt pool_owners id with Some l -> l | None -> []
          in
          Hashtbl.replace pool_owners id (prev @ [ Component.name c ]))
        (Component.pools c))
    components;
  Hashtbl.iter
    (fun id owners ->
      match owners with
      | [] | [ _ ] -> ()
      | os ->
          flag "pool-owner"
            ~subject:(Printf.sprintf "pool %d" id)
            ~culprit:(String.concat ", " os)
            "registered by several components; each crash would free it \
             wholesale")
    pool_owners;
  count "pool-owner" (Hashtbl.length pool_owners);
  (* sharding: RSS table sanity plus the per-shard replica partition. *)
  (match sharding with
  | None -> ()
  | Some s ->
      Array.iteri
        (fun b q ->
          if q < 0 || q >= s.shards then
            flag "sharding"
              ~subject:(Printf.sprintf "rss bucket %d" b)
              ~culprit:"nic"
              (Printf.sprintf "indirection entry %d outside [0, %d)" q s.shards))
        s.rss_table;
      let endpoint_check ~subject chan_id ~role ~expect =
        match Hashtbl.find_opt chans chan_id with
        | None ->
            flag "sharding" ~subject ~culprit:"wiring"
              (Printf.sprintf "channel %d missing from the graph" chan_id)
        | Some ci ->
            let actual =
              match role with
              | `Consumer -> ci.consumers
              | `Producer -> ci.exclusive
            in
            if not (List.exists (fun e -> e.comp = expect) actual) then
              flag "sharding"
                ~subject:(chan_name chan_id)
                ~culprit:(names actual)
                (Printf.sprintf "%s expects %s as %s here" subject expect
                   (match role with
                   | `Consumer -> "consumer"
                   | `Producer -> "exclusive producer"))
      in
      for i = 0 to s.shards - 1 do
        if not (Array.exists (fun q -> q = i) s.rss_table) then
          flag "sharding"
            ~subject:(Printf.sprintf "shard %d" i)
            ~culprit:"nic"
            "no RSS bucket steers to this shard: its flows can never arrive";
        let subject = Printf.sprintf "shard %d" i in
        let expect_replica = s.replica_names.(i mod s.replicas) in
        (* Requests from shard i must reach exactly its replica; the
           replica's deliveries must come back on shard i's channel. *)
        endpoint_check ~subject s.shard_to_ip.(i) ~role:`Consumer
          ~expect:expect_replica;
        endpoint_check ~subject s.shard_to_ip.(i) ~role:`Producer
          ~expect:s.shard_names.(i);
        endpoint_check ~subject s.ip_to_shard.(i) ~role:`Consumer
          ~expect:s.shard_names.(i);
        endpoint_check ~subject s.ip_to_shard.(i) ~role:`Producer
          ~expect:expect_replica
      done;
      count "sharding" s.shards;
      (* The PF partition, checked the same way: every IP replica must
         hold a private request channel to every PF shard (consumed by
         exactly that shard), and the shard's verdicts must come back
         on the replica's own reply channel — the structural half of
         "a flow's packets always meet the same conntrack partition". *)
      if s.pf_shards > 0 then begin
        if Array.length s.ip_to_pf <> s.replicas then
          flag "sharding" ~subject:"pf partition" ~culprit:"wiring"
            (Printf.sprintf "%d ip→pf channel rows for %d replicas"
               (Array.length s.ip_to_pf) s.replicas);
        Array.iteri
          (fun k row ->
            if Array.length row <> s.pf_shards then
              flag "sharding"
                ~subject:(Printf.sprintf "replica %d pf fan-out" k)
                ~culprit:"wiring"
                (Printf.sprintf "%d pf channels for %d pf shards"
                   (Array.length row) s.pf_shards);
            Array.iteri
              (fun j chan_id ->
                let subject = Printf.sprintf "pf shard %d (replica %d)" j k in
                endpoint_check ~subject chan_id ~role:`Consumer
                  ~expect:s.pf_names.(j);
                endpoint_check ~subject chan_id ~role:`Producer
                  ~expect:s.replica_names.(k))
              row)
          s.ip_to_pf;
        Array.iteri
          (fun k row ->
            Array.iteri
              (fun j chan_id ->
                let subject = Printf.sprintf "pf shard %d (replica %d)" j k in
                endpoint_check ~subject chan_id ~role:`Consumer
                  ~expect:s.replica_names.(k);
                endpoint_check ~subject chan_id ~role:`Producer
                  ~expect:s.pf_names.(j))
              row)
          s.pf_to_ip;
        count "sharding-pf" (s.pf_shards * s.replicas)
      end);
  {
    Report.title;
    checks = List.rev !checks;
    violations = List.rev !violations;
  }

(* The native topology has no Component list to walk — its mutable
   structures live behind the runtime's pinning plan. The ownership
   lint for that surface is Race.check_plan; re-exported here so the
   static checker remains the one front door for "prove the wiring
   before running it". *)
let check_native_plan = Race.check_plan
