(** Static channel-graph checker.

    Walks the wired stack's components — their declared producer
    endpoints, consumed channels, directory exports and registered
    pools — before (or after) simulation, and checks the structural
    invariants the paper's design relies on:

    - {b spsc}: every channel has exactly one consumer and at most one
      {e exclusive} producer (Section IV-B: the queues are
      single-producer single-consumer by construction; fan-out
      endpoints replicated across IP replicas are declared [~shared]
      and exempt from the single-producer count, but still may not
      coexist with two exclusive claims);
    - {b core-affinity}: producer and consumer of a channel live on
      distinct cores — a channel between two processes on one core
      would serialize on the context switch the design eliminates;
    - {b export-owner}: every directory export is published by the
      channel's consumer (the export belongs to the consumer, who must
      republish it after its own restart, Section IV-D);
    - {b republish}: every export key resolves in the directory to the
      exported channel's id — i.e. after any sequence of crashes and
      restarts, the directory again describes exactly the wired
      topology — and no key is exported twice;
    - {b blocking-cycle}: the blocking-wait graph (an edge from
      producer to consumer for every endpoint declared with
      [~policy:`Block]) is acyclic — a cycle is the deadlock the
      paper's non-blocking rule exists to prevent (Section IV-A);
    - {b pool-owner}: every buffer pool is registered by at most one
      component (pools die with their owner; two owners would
      double-free);
    - {b sharding} (when a {!sharding} spec is given): the RSS
      indirection table only names real queues, every shard is
      reachable from the table, and each shard's request/delivery
      channels connect it to exactly the IP replica that owns its
      queues — for every [ip_replicas] partition. *)

type sharding = {
  shards : int;
  replicas : int;
  rss_table : int array;  (** Indirection table: bucket → queue/shard. *)
  shard_to_ip : int array;
      (** Shard [i] → channel id of its transport→IP request channel. *)
  ip_to_shard : int array;
      (** Shard [i] → channel id of the IP→transport delivery channel. *)
  replica_names : string array;  (** Replica [k] → component name. *)
  shard_names : string array;  (** Shard [i] → component name. *)
  pf_shards : int;
      (** Packet-filter instances; 0 = no filter, PF checks skipped. *)
  pf_names : string array;  (** PF shard [j] → component name. *)
  ip_to_pf : int array array;
      (** [.(k).(j)] → channel id of replica [k]'s request channel to
          PF shard [j]: consumed by exactly that shard, produced by
          exactly that replica. *)
  pf_to_ip : int array array;
      (** [.(k).(j)] → channel id of the verdict channel back: consumed
          by replica [k], produced by PF shard [j]. *)
}

val check :
  ?directory:Newt_channels.Pubsub.t ->
  ?sharding:sharding ->
  ?title:string ->
  Newt_stack.Component.t list ->
  Report.t
(** Run every applicable check over the given components. *)

val check_native_plan : ?title:string -> Race.Plan.t -> Report.t
(** The native counterpart of {!check}: the domain-ownership lint over
    a {!Race.Plan} (see {!Race.check_plan}, of which this is a
    re-export). Static checks walk simulated component graphs; native
    runs have no components to walk, only the pinning plan. *)
