module Hook = Newt_channels.Hook
module Tcp = Newt_net.Tcp
module Addr = Newt_net.Addr

(* {1 The rule language}

   Two declarative tables, both first-match:

   - the {e segment table} judges every segment the engine transmits
     (or accepts) against the shadow state of its connection — may a
     PCB in this state emit a segment of this class at all? This is
     the paper's §V-B class made checkable: a server that answers
     traffic from the wrong protocol state.

   - the {e transition relation} judges every state change the engine
     reports — is (from, cause, to) an RFC-793 edge, or one of the
     paper's Table I crash edges?

   Both tables are data, so the static lint below can prove them
   total and deterministic before a single packet flows. *)

type seg_class = Syn | Syn_ack | Fin | Rst | Ack | Data
type dir = Tx | Rx

let all_states =
  [
    Tcp.Listen;
    Tcp.Syn_sent;
    Tcp.Syn_received;
    Tcp.Established;
    Tcp.Fin_wait_1;
    Tcp.Fin_wait_2;
    Tcp.Close_wait;
    Tcp.Closing;
    Tcp.Last_ack;
    Tcp.Time_wait;
    Tcp.Closed;
  ]

let all_classes = [ Syn; Syn_ack; Fin; Rst; Ack; Data ]
let all_dirs = [ Tx; Rx ]

let class_name = function
  | Syn -> "SYN"
  | Syn_ack -> "SYN-ACK"
  | Fin -> "FIN"
  | Rst -> "RST"
  | Ack -> "ACK"
  | Data -> "data"

let dir_name = function Tx -> "tx" | Rx -> "rx"

let state_name s = Format.asprintf "%a" Tcp.pp_state s

(* Flag precedence mirrors what the segment {e does} to sequence
   space: RST overrides everything, then the handshake flags, then
   FIN (which also consumes a sequence number even when data rides
   along), then payload, and a bare ACK last. *)
let classify (f : Hook.tcp_flags) =
  if f.Hook.rst then Rst
  else if f.Hook.syn && f.Hook.ack then Syn_ack
  else if f.Hook.syn then Syn
  else if f.Hook.fin then Fin
  else if f.Hook.data then Data
  else Ack

type verdict = Allow | Deny of string

type seg_rule = {
  states : Tcp.state list;  (** [] = any state *)
  classes : seg_class list;  (** [] = any class *)
  dirs : dir list;  (** [] = either direction *)
  verdict : verdict;
  why : string;
}

(* The segment table. Order is load-bearing: each Allow narrows what
   the Deny wildcard behind it condemns. Shadow states follow the
   engine's PCB states; a connection the checker has never seen (or
   whose PCB was torn down) is Closed — which is exactly why rule 1
   comes first: RST is the one thing a Closed endpoint must still
   say (Table I: peers of a crashed server are refused, not
   ignored). *)
let seg_rules : seg_rule list =
  [
    {
      states = [];
      classes = [ Rst ];
      dirs = [ Tx ];
      verdict = Allow;
      why =
        "RST is the universal refusal — answering RST from Closed is Table \
         I's required post-crash behaviour";
    };
    {
      states = [ Tcp.Syn_sent ];
      classes = [ Syn ];
      dirs = [ Tx ];
      verdict = Allow;
      why = "active open and its retransmissions";
    };
    {
      states = [];
      classes = [ Syn ];
      dirs = [ Tx ];
      verdict = Deny "syn-outside-syn-sent";
      why = "only an active opener may send SYN";
    };
    {
      states = [ Tcp.Syn_received ];
      classes = [ Syn_ack ];
      dirs = [ Tx ];
      verdict = Allow;
      why = "passive-open reply and its retransmissions";
    };
    {
      states = [];
      classes = [ Syn_ack ];
      dirs = [ Tx ];
      verdict = Deny "syn-ack-outside-syn-received";
      why = "only a passive opener may send SYN-ACK";
    };
    {
      states =
        [
          Tcp.Established;
          Tcp.Close_wait;
          Tcp.Fin_wait_1;
          Tcp.Closing;
          Tcp.Last_ack;
        ];
      classes = [ Fin ];
      dirs = [ Tx ];
      verdict = Allow;
      why =
        "FIN emission precedes the Fin_wait_1/Last_ack transition; the later \
         states retransmit it";
    };
    {
      states = [];
      classes = [ Fin ];
      dirs = [ Tx ];
      verdict = Deny "fin-from-wrong-state";
      why = "FIN before the connection is synchronized (or after it is gone)";
    };
    {
      states =
        [
          Tcp.Established;
          Tcp.Close_wait;
          Tcp.Fin_wait_1;
          Tcp.Closing;
          Tcp.Last_ack;
        ];
      classes = [ Data ];
      dirs = [ Tx ];
      verdict = Allow;
      why = "data flows while the send direction is open (or retransmits)";
    };
    {
      states = [];
      classes = [ Data ];
      dirs = [ Tx ];
      verdict = Deny "data-from-wrong-state";
      why = "payload from an unsynchronized or closed connection";
    };
    {
      states =
        [
          Tcp.Established;
          Tcp.Fin_wait_1;
          Tcp.Fin_wait_2;
          Tcp.Close_wait;
          Tcp.Closing;
          Tcp.Last_ack;
          Tcp.Time_wait;
        ];
      classes = [ Ack ];
      dirs = [ Tx ];
      verdict = Allow;
      why = "bare ACKs belong to synchronized states (and Time_wait re-ACKs)";
    };
    {
      states = [];
      classes = [ Ack ];
      dirs = [ Tx ];
      verdict = Deny "ack-from-wrong-state";
      why =
        "a bare ACK from Closed/Listen/handshake states — the §V-B bug: the \
         endpoint answers as if the connection lived";
    };
    {
      states = [];
      classes = [];
      dirs = [ Rx ];
      verdict = Allow;
      why =
        "the peer may deliver anything; conformance is judged on our own \
         transmissions and the transitions they cause";
    };
  ]

let seg_rule_count = List.length seg_rules

let seg_match st cls d r =
  (r.states = [] || List.mem st r.states)
  && (r.classes = [] || List.mem cls r.classes)
  && (r.dirs = [] || List.mem d r.dirs)

let first_match rules st cls d =
  let rec go i = function
    | [] -> None
    | r :: rest -> if seg_match st cls d r then Some (i, r) else go (i + 1) rest
  in
  go 0 rules

(* {2 The transition relation}

   Causes are coarser than segments on the receive side: the segment
   that completes a passive open classifies as ACK, data or FIN
   depending on what rides along with the acknowledgment, so
   Rx-driven edges admit the classes that can legitimately carry
   them. The edges the sabotage modes forge — Closed→Established by
   API with no handshake, and any transition surviving a crash —
   have no entry here and are flagged. *)

type cause = Api | Timer | Crash | Rx_seg of seg_class | Tx_seg of seg_class

let cause_name = function
  | Api -> "api"
  | Timer -> "timer"
  | Crash -> "crash"
  | Rx_seg c -> "rx " ^ class_name c
  | Tx_seg c -> "tx " ^ class_name c

type trans_rule = {
  from_ : Tcp.state list;  (** [] = any state *)
  causes : cause list;
  to_ : Tcp.state;
}

let rx_completing = [ Rx_seg Ack; Rx_seg Data; Rx_seg Fin ]

let transitions : trans_rule list =
  [
    { from_ = [ Tcp.Closed ]; causes = [ Api ]; to_ = Tcp.Syn_sent };
    { from_ = [ Tcp.Closed ]; causes = [ Rx_seg Syn ]; to_ = Tcp.Syn_received };
    {
      from_ = [ Tcp.Syn_sent ];
      causes = [ Rx_seg Syn_ack ];
      to_ = Tcp.Established;
    };
    (* Simultaneous open. *)
    { from_ = [ Tcp.Syn_sent ]; causes = [ Rx_seg Syn ]; to_ = Tcp.Syn_received };
    {
      from_ = [ Tcp.Syn_sent ];
      causes = [ Rx_seg Rst; Api; Timer ];
      to_ = Tcp.Closed;
    };
    {
      from_ = [ Tcp.Syn_received ];
      causes = rx_completing;
      to_ = Tcp.Established;
    };
    {
      from_ = [ Tcp.Syn_received ];
      causes = [ Rx_seg Rst; Api; Timer ];
      to_ = Tcp.Closed;
    };
    { from_ = [ Tcp.Established ]; causes = [ Tx_seg Fin ]; to_ = Tcp.Fin_wait_1 };
    { from_ = [ Tcp.Established ]; causes = [ Rx_seg Fin ]; to_ = Tcp.Close_wait };
    {
      from_ = [ Tcp.Established ];
      causes = [ Rx_seg Rst; Timer; Api ];
      to_ = Tcp.Closed;
    };
    { from_ = [ Tcp.Fin_wait_1 ]; causes = rx_completing; to_ = Tcp.Fin_wait_2 };
    (* Simultaneous close. *)
    { from_ = [ Tcp.Fin_wait_1 ]; causes = [ Rx_seg Fin ]; to_ = Tcp.Closing };
    {
      from_ = [ Tcp.Fin_wait_1 ];
      causes = [ Rx_seg Rst; Timer; Api ];
      to_ = Tcp.Closed;
    };
    { from_ = [ Tcp.Fin_wait_2 ]; causes = rx_completing; to_ = Tcp.Time_wait };
    (* No Timer exit from Fin_wait_2: the retransmission timer stopped
       when the FIN was acknowledged; only a peer RST or an API abort
       can kill the half-closed wait. *)
    {
      from_ = [ Tcp.Fin_wait_2 ];
      causes = [ Rx_seg Rst; Api ];
      to_ = Tcp.Closed;
    };
    { from_ = [ Tcp.Closing ]; causes = rx_completing; to_ = Tcp.Time_wait };
    {
      from_ = [ Tcp.Closing ];
      causes = [ Rx_seg Rst; Timer; Api ];
      to_ = Tcp.Closed;
    };
    { from_ = [ Tcp.Close_wait ]; causes = [ Tx_seg Fin ]; to_ = Tcp.Last_ack };
    {
      from_ = [ Tcp.Close_wait ];
      causes = [ Rx_seg Rst; Timer; Api ];
      to_ = Tcp.Closed;
    };
    {
      from_ = [ Tcp.Last_ack ];
      causes = rx_completing @ [ Rx_seg Rst; Timer; Api ];
      to_ = Tcp.Closed;
    };
    {
      from_ = [ Tcp.Time_wait ];
      causes = [ Timer; Rx_seg Rst; Api ];
      to_ = Tcp.Closed;
    };
    (* Table I: a crash closes everything, from anywhere. *)
    { from_ = []; causes = [ Crash ]; to_ = Tcp.Closed };
  ]

let trans_allowed ~from_ ~cause ~to_ =
  List.exists
    (fun r ->
      (r.from_ = [] || List.mem from_ r.from_)
      && List.mem cause r.causes && r.to_ = to_)
    transitions

let describe_rules () =
  List.mapi
    (fun i r ->
      let states =
        match r.states with
        | [] -> "any"
        | ss -> String.concat "|" (List.map state_name ss)
      in
      let classes =
        match r.classes with
        | [] -> "any"
        | cs -> String.concat "|" (List.map class_name cs)
      in
      let dirs =
        match r.dirs with
        | [] -> "tx|rx"
        | ds -> String.concat "|" (List.map dir_name ds)
      in
      let verdict =
        match r.verdict with Allow -> "allow" | Deny c -> "DENY " ^ c
      in
      Printf.sprintf "%2d. %s %s in %s: %s — %s" i dirs classes states verdict
        r.why)
    seg_rules

let describe_transitions () =
  List.map
    (fun r ->
      let from_ =
        match r.from_ with
        | [] -> "any"
        | ss -> String.concat "|" (List.map state_name ss)
      in
      Printf.sprintf "%s --[%s]--> %s" from_
        (String.concat ", " (List.map cause_name r.causes))
        (state_name r.to_))
    transitions

(* {1 The static lint}

   Proves the tables themselves before trusting their verdicts:

   - {e totality}: every (state, class, direction) cell has a first
     match — no segment the engine can emit escapes judgment;
   - {e determinism / no dead rules}: every rule is the first match
     of at least one cell. A rule no cell reaches is shadowed by the
     rules above it — either redundant or, worse, an Allow that a
     broader Deny silently overrides;
   - {e liveness of the transition relation}: every state the
     relation can enter has an exit edge, and every state except the
     never-entered Listen is reachable from Closed — no transition
     into a dead end. *)

let lint_rules ?(drop = -1) rules =
  let rules = List.filteri (fun i _ -> i <> drop) rules in
  let violations = ref [] in
  let flag check subject detail =
    violations :=
      { Report.check; subject; culprit = "tcpfsm rule table"; detail }
      :: !violations
  in
  let cells = ref 0 in
  let hit = Array.make (List.length rules) 0 in
  List.iter
    (fun st ->
      List.iter
        (fun cls ->
          List.iter
            (fun d ->
              incr cells;
              match first_match rules st cls d with
              | Some (i, _) -> hit.(i) <- hit.(i) + 1
              | None ->
                  flag "table-totality"
                    (Printf.sprintf "(%s, %s, %s)" (state_name st)
                       (class_name cls) (dir_name d))
                    "no rule matches this cell — the checker would have no \
                     verdict for a segment the engine can emit")
            all_dirs)
        all_classes)
    all_states;
  List.iteri
    (fun i r ->
      if hit.(i) = 0 then
        flag "dead-rule"
          (Printf.sprintf "rule %d (%s)" i r.why)
          "never the first match of any cell — shadowed by the rules above \
           it")
    rules;
  (!cells, Array.fold_left (fun a n -> a + if n > 0 then 1 else 0) 0 hit,
   !violations)

let lint_transitions () =
  let violations = ref [] in
  let flag check subject detail =
    violations :=
      { Report.check; subject; culprit = "tcpfsm transition relation"; detail }
      :: !violations
  in
  (* Exit coverage: every entered state can be left. *)
  let entered =
    List.sort_uniq compare (List.map (fun r -> r.to_) transitions)
  in
  List.iter
    (fun st ->
      if st = Tcp.Listen then
        flag "listen-entered" (state_name st)
          "the relation enters Listen, a state PCBs never hold"
      else
        let has_exit =
          List.exists
            (fun r -> r.from_ = [] || List.mem st r.from_)
            transitions
        in
        if not has_exit then
          flag "no-exit" (state_name st)
            "the relation can enter this state but never leave it")
    entered;
  (* Reachability from Closed: the relation must span the whole
     machine, or the checker would reject legitimate runs. *)
  let reachable = Hashtbl.create 16 in
  Hashtbl.replace reachable Tcp.Closed ();
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun r ->
        let from_ok =
          r.from_ = [] || List.exists (Hashtbl.mem reachable) r.from_
        in
        if from_ok && not (Hashtbl.mem reachable r.to_) then begin
          Hashtbl.replace reachable r.to_ ();
          changed := true
        end)
      transitions
  done;
  List.iter
    (fun st ->
      if st <> Tcp.Listen && not (Hashtbl.mem reachable st) then
        flag "unreachable-state" (state_name st)
          "no path from Closed reaches this state — the relation is missing \
           edges")
    all_states;
  (List.length entered, Hashtbl.length reachable, !violations)

let lint_table () =
  let cells, live_rules, seg_viols = lint_rules seg_rules in
  let entered, reachable, trans_viols = lint_transitions () in
  {
    Report.title = "tcp-fsm rule-table lint";
    checks =
      [
        ("cells-covered", cells);
        ("live-rules", live_rules);
        ("transition-edges", List.length transitions);
        ("entered-states-with-exit", entered);
        ("reachable-states", reachable);
      ];
    violations = List.rev (trans_viols @ seg_viols);
  }

let lint_dropping i =
  let cells, live_rules, seg_viols = lint_rules ~drop:i seg_rules in
  {
    Report.title = Printf.sprintf "tcp-fsm lint, rule %d removed" i;
    checks = [ ("cells-covered", cells); ("live-rules", live_rules) ];
    violations = List.rev seg_viols;
  }

(* {1 The runtime checker}

   A shadow PCB table keyed by the engine-local 4-tuple. Absent means
   Closed; a transition to Closed retires the entry, so the table is
   bounded by the number of live connections, not the number ever
   seen. On a segment event the shadow state picks the segment
   table's verdict; on a state-change event the claimed origin is
   checked against the shadow, the edge against the relation, and the
   shadow follows the engine's claim either way (one bug, one
   violation — no cascade).

   The native runtime delivers events from two domains (the TCP
   server's and the peer host's), so every entry point takes the
   mutex; the sim path takes it too (uncontended Mutex.lock is a
   handful of nanoseconds and keeps one code path). *)

type key = int32 * int * int32 * int

let shadow : (key, Tcp.state) Hashtbl.t = Hashtbl.create 1024
let viols : Report.violation list ref = ref []
let seg_events = ref 0
let trans_events = ref 0
let lock = Mutex.create ()
let sim_token : Hook.token option ref = ref None
let native_armed = ref false

(* Model-cycle cost of one checker step (hash probe + first-match
   scan), for the overhead accounting next to the sanitizer's 40 and
   the protocol checker's 30. *)
let cycles_per_event = 25

let ring_size = 64
let ring : string option array = Array.make ring_size None
let ring_next = ref 0

let remember line =
  ring.(!ring_next mod ring_size) <- Some line;
  incr ring_next

let trace () =
  let n = min !ring_next ring_size in
  let start = !ring_next - n in
  List.filter_map
    (fun i -> ring.((start + i) mod ring_size))
    (List.init n Fun.id)

let conn_str (lip, lport, rip, rport) =
  Printf.sprintf "%s:%d <-> %s:%d"
    (Addr.Ipv4.to_string (Addr.Ipv4.of_int32 lip))
    lport
    (Addr.Ipv4.to_string (Addr.Ipv4.of_int32 rip))
    rport

let flags_str (f : Hook.tcp_flags) =
  String.concat ""
    [
      (if f.Hook.syn then "S" else "");
      (if f.Hook.ack then "A" else "");
      (if f.Hook.fin then "F" else "");
      (if f.Hook.rst then "R" else "");
      (if f.Hook.data then "D" else "");
    ]

let state_of_key k =
  match Hashtbl.find_opt shadow k with Some s -> s | None -> Tcp.Closed

let record check key detail =
  viols :=
    {
      Report.check;
      subject = conn_str key;
      culprit = "tcp-engine";
      detail;
    }
    :: !viols

let on_seg key ~d flags =
  incr seg_events;
  let cls = classify flags in
  let st = state_of_key key in
  remember
    (Printf.sprintf "%s %s %s [%s] in %s" (dir_name d) (class_name cls)
       (conn_str key) (flags_str flags) (state_name st));
  match first_match seg_rules st cls d with
  | Some (_, { verdict = Allow; _ }) -> ()
  | Some (i, { verdict = Deny check; why; _ }) ->
      record check key
        (Printf.sprintf
           "%s %s segment while the connection is %s (rule %d: %s)"
           (dir_name d) (class_name cls) (state_name st) i why)
  | None ->
      (* Unreachable once the lint passes; flagged rather than assumed. *)
      record "table-totality" key
        (Printf.sprintf "no rule for (%s, %s, %s)" (state_name st)
           (class_name cls) (dir_name d))

let on_transition key ~from_s ~to_s ~cause =
  incr trans_events;
  let from_claim = Tcp.state_of_code from_s in
  let to_ = Tcp.state_of_code to_s in
  let shadow_st = state_of_key key in
  remember
    (Printf.sprintf "%s: %s -> %s (%s)" (conn_str key) (state_name from_claim)
       (state_name to_) (cause_name cause));
  if shadow_st <> from_claim then
    record "transition-origin-mismatch" key
      (Printf.sprintf
         "engine claims the transition left %s but the observed history put \
          the connection in %s"
         (state_name from_claim) (state_name shadow_st));
  if not (trans_allowed ~from_:from_claim ~cause ~to_) then
    record "illegal-transition" key
      (Printf.sprintf "%s --[%s]--> %s matches no RFC-793/Table-I edge"
         (state_name from_claim) (cause_name cause) (state_name to_));
  (* Follow the engine's claim even on violation: one bug, one
     violation, no cascade. *)
  if to_ = Tcp.Closed then Hashtbl.remove shadow key
  else Hashtbl.replace shadow key to_

let cause_of_hook = function
  | Hook.T_api -> Api
  | Hook.T_timer -> Timer
  | Hook.T_crash -> Crash
  | Hook.T_rx f -> Rx_seg (classify f)
  | Hook.T_tx f -> Tx_seg (classify f)

let on_event ev =
  Mutex.lock lock;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock lock)
    (fun () ->
      match ev with
      | Hook.T_seg_tx { lip; lport; rip; rport; flags } ->
          on_seg (lip, lport, rip, rport) ~d:Tx flags
      | Hook.T_seg_rx { lip; lport; rip; rport; flags } ->
          on_seg (lip, lport, rip, rport) ~d:Rx flags
      | Hook.T_state_change { lip; lport; rip; rport; from_s; to_s; cause } ->
          on_transition (lip, lport, rip, rport) ~from_s ~to_s
            ~cause:(cause_of_hook cause))

let clear () =
  Hashtbl.reset shadow;
  viols := [];
  seg_events := 0;
  trans_events := 0;
  Array.fill ring 0 ring_size None;
  ring_next := 0

let install () =
  if !sim_token = None then begin
    clear ();
    sim_token := Some (Hook.tcp_add on_event)
  end

let uninstall () =
  match !sim_token with
  | Some tok ->
      Hook.tcp_remove tok;
      sim_token := None
  | None -> ()

let install_native ?(sample = 1) () =
  if not !native_armed then begin
    clear ();
    Hook.set_tcp_sample sample;
    Hook.set_tcp_native on_event;
    native_armed := true
  end

let uninstall_native () =
  if !native_armed then begin
    Hook.clear_tcp_native ();
    Hook.set_tcp_sample 1;
    native_armed := false
  end

let active () = !sim_token <> None || !native_armed
let reset () = clear ()

let with_lock f =
  Mutex.lock lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock lock) f

let violations () = with_lock (fun () -> List.rev !viols)
let segment_count () = !seg_events
let transition_count () = !trans_events
let event_count () = !seg_events + !trans_events
let overhead_cycles () = event_count () * cycles_per_event
let tracked_connections () = with_lock (fun () -> Hashtbl.length shadow)

let state_of ~lip ~lport ~rip ~rport =
  with_lock (fun () -> state_of_key (lip, lport, rip, rport))

(* {2 The conntrack cross-check}

   Two independent definitions of "this connection completed its
   handshake" exist in the stack: the packet filter's conntrack
   confirmation bit (promoted on the originator-reply-originator
   shape) and this checker's shadow FSM (Established on the
   handshake-completing ACK). They must agree in one direction: an
   entry must not be confirmed while the checker still has the PCB in
   Syn_received — a confirmed half-open entry is exactly the flood
   state the LRU's eviction policy exists to keep out of the
   protected class. Connections the checker never observed (sampled
   out, or conntrack entries re-imported across a crash) are
   skipped. *)

let crosscheck_conntrack ~where ct =
  with_lock (fun () ->
      List.iter
        (fun ((flow : Newt_pf.Conntrack.flow), _last_seen, confirmed) ->
          match flow.Newt_pf.Conntrack.proto with
          | Newt_pf.Conntrack.Ct_udp -> ()
          | Newt_pf.Conntrack.Ct_tcp ->
              let key =
                ( Addr.Ipv4.to_int32 flow.Newt_pf.Conntrack.local_ip,
                  flow.Newt_pf.Conntrack.local_port,
                  Addr.Ipv4.to_int32 flow.Newt_pf.Conntrack.remote_ip,
                  flow.Newt_pf.Conntrack.remote_port )
              in
              if confirmed then
                match Hashtbl.find_opt shadow key with
                | Some Tcp.Syn_received ->
                    record "conntrack-confirmed-half-open" key
                      (Printf.sprintf
                         "%s: conntrack marks the entry confirmed while the \
                          FSM checker still has the PCB in SYN_RCVD — the \
                          handshake-shape and state-machine definitions of \
                          'established' have drifted"
                         where)
                | Some _ | None -> ())
        (Newt_pf.Conntrack.export ct))

let report ?(title = "tcp-fsm conformance") () =
  with_lock (fun () ->
      {
        Report.title;
        checks =
          [
            ("segments", !seg_events);
            ("transitions", !trans_events);
            ("tracked-connections", Hashtbl.length shadow);
          ];
        violations = List.rev !viols;
      })

(* Mcheck-shaped machine-readable verdict: same fields the recovery
   model checker emits per crash point, so the CI greps
   ("trace":[...]) work across checkers. *)
let verdict_json () =
  with_lock (fun () ->
      let vs =
        List.rev_map
          (fun (v : Report.violation) ->
            Printf.sprintf
              {|{"check":"%s","subject":"%s","culprit":"%s","detail":"%s"}|}
              (Report.json_escape v.Report.check)
              (Report.json_escape v.Report.subject)
              (Report.json_escape v.Report.culprit)
              (Report.json_escape v.Report.detail))
          !viols
        |> List.rev
      in
      let trace_lines =
        let n = min !ring_next ring_size in
        let start = !ring_next - n in
        List.filter_map
          (fun i -> ring.((start + i) mod ring_size))
          (List.init n Fun.id)
        |> List.map (fun l -> "\"" ^ Report.json_escape l ^ "\"")
      in
      Printf.sprintf
        {|{"component":"tcp-fsm","ok":%b,"segments":%d,"transitions":%d,"tracked":%d,"violations":[%s],"trace":[%s]}|}
        (!viols = []) !seg_events !trans_events (Hashtbl.length shadow)
        (String.concat "," vs)
        (String.concat "," trace_lines))
