(** TCP state-machine conformance checking.

    The id-level checkers ({!Protocol}, the sanitizer) verify the
    stack's {e channel} contracts; this module verifies its {e
    protocol} contract — the paper's §V-B bug class is a server that
    keeps answering traffic while its TCP state is wrong, which no
    request/confirm pairing can see. Two declarative first-match
    tables do the judging:

    - a {b segment table} over (state × segment class × direction):
      may a connection in this state emit a segment of this class?
      RST-from-Closed is legal (Table I: peers of a crashed server
      are refused); ACK-from-Closed is the bug.
    - a {b transition relation} over (state, cause, state): every
      state change a TCP engine reports must be an RFC-793 edge or a
      Table I crash edge. Closed→Established with no handshake — a
      restarted shard resurrecting stale PCBs — is the bug.

    Events arrive through the [Newt_channels.Hook] TCP family, which
    both the simulated engines and the native runtime's servers
    mirror, so the same checker rides fig4/fig5, the sharded stack,
    the churn workload and real multi-domain runs ({!install_native}
    takes a mutex per event; per-connection sampling keeps long runs
    cheap).

    The {b static lint} ({!lint_table}) proves the tables before any
    packet flows: totality (every cell has a first match), no dead
    rules (every rule is the first match somewhere), and liveness of
    the relation (every entered state has an exit and is reachable
    from Closed; Listen is never entered). *)

(** {1 The tables} *)

type seg_class = Syn | Syn_ack | Fin | Rst | Ack | Data

val classify : Newt_channels.Hook.tcp_flags -> seg_class
(** Flag-precedence classification: RST > SYN-ACK > SYN > FIN > data
    > bare ACK. *)

val seg_rule_count : int
(** Number of rules in the segment table (for {!lint_dropping}
    sweeps). *)

val describe_rules : unit -> string list
(** One line per segment rule, in match order. *)

val describe_transitions : unit -> string list
(** One line per transition-relation edge. *)

(** {1 The static lint} *)

val lint_table : unit -> Report.t
(** Prove the shipped tables total, deterministic and live (see the
    module preamble). A clean report is the precondition for trusting
    any runtime verdict. *)

val lint_dropping : int -> Report.t
(** Re-lint the segment table with rule [i] removed — the negative
    control: deleting a Deny wildcard must break totality, deleting
    an Allow must orphan nothing silently. *)

(** {1 The runtime checker} *)

val install : unit -> unit
(** Arm on the simulator's TCP hook chain (idempotent); clears all
    checker state first. *)

val uninstall : unit -> unit

val install_native : ?sample:int -> unit -> unit
(** Arm as the native TCP listener (events arrive from any domain; the
    checker serializes them on an internal mutex). [sample] keeps one
    in [sample] {e connections} (power-of-two rounding) — a kept
    connection's event stream is complete, so sampling hides whole
    connections but never truncates one. *)

val uninstall_native : unit -> unit
(** Disarm the native listener and reset the sampling period. *)

val active : unit -> bool
val reset : unit -> unit

val violations : unit -> Report.violation list
val segment_count : unit -> int
val transition_count : unit -> int
val event_count : unit -> int

val overhead_cycles : unit -> int
(** Model-cycle cost had the checker run inline (events ×
    {!cycles_per_event}), for the continuous checker's overhead
    accounting. *)

val cycles_per_event : int

val tracked_connections : unit -> int
(** Live shadow PCBs (transitions to Closed retire their entry, so
    this tracks live connections, not connections ever seen). *)

val state_of :
  lip:int32 -> lport:int -> rip:int32 -> rport:int -> Newt_net.Tcp.state
(** The checker's shadow state for an engine-local 4-tuple; [Closed]
    when unobserved. *)

val trace : unit -> string list
(** The most recent checker events (bounded ring), oldest first — the
    counterexample trace attached to failing verdicts. *)

val crosscheck_conntrack : where:string -> Newt_pf.Conntrack.t -> unit
(** Flag every conntrack entry whose confirmation bit says
    "handshake complete" while the checker's shadow FSM still has the
    PCB in [Syn_received] — drift between the packet filter's
    handshake-shape definition and the state machine's. Connections
    the checker never observed are skipped. Violations land in
    {!violations} under ["conntrack-confirmed-half-open"]. *)

val report : ?title:string -> unit -> Report.t

val verdict_json : unit -> string
(** Mcheck-shaped verdict: [{"component":"tcp-fsm","ok":…,
    "violations":[…],"trace":[…]}] — the same trace-carrying
    counterexample schema the recovery model checker and race
    detector emit, so CI greps are uniform. *)
