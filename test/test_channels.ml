(* Tests for the fast-path channel building blocks: SPSC queue, pools,
   rich pointers, request database, pub/sub, simulated channels. *)

module Spsc = Newt_channels.Spsc_queue
module Pool = Newt_channels.Pool
module Rich_ptr = Newt_channels.Rich_ptr
module Request_db = Newt_channels.Request_db
module Pubsub = Newt_channels.Pubsub
module Sim_chan = Newt_channels.Sim_chan
module Hook = Newt_channels.Hook

(* The SPSC queue's whole reason to exist is lock-free use from two
   real domains. Push a long numbered sequence from one domain, pop it
   from another with randomized pacing on both sides, and require exact
   in-order delivery: any lost, duplicated or reordered message shows
   up as a sequence break. Capacity is small so the ring wraps
   thousands of times; backoff falls through to a real sleep so the
   test also passes on a single-core machine where both domains
   time-share. *)
let test_spsc_cross_domain_stress () =
  let n = 1_000_000 in
  let q = Spsc.create ~capacity:1024 () in
  let backoff tries = if tries < 200 then Domain.cpu_relax () else Unix.sleepf 5e-5 in
  let producer () =
    let rng = Random.State.make [| 7 |] in
    let i = ref 0 in
    let tries = ref 0 in
    while !i < n do
      if Spsc.try_push q !i then begin
        incr i;
        tries := 0;
        (* Random pauses vary the producer/consumer phase alignment. *)
        if Random.State.int rng 4096 = 0 then Unix.sleepf 5e-5
      end
      else begin
        incr tries;
        backoff !tries
      end
    done
  in
  let consumer () =
    let rng = Random.State.make [| 11 |] in
    let expected = ref 0 in
    let bad = ref None in
    let tries = ref 0 in
    while !expected < n && !bad = None do
      match Spsc.try_pop q with
      | Some v ->
          if v <> !expected then bad := Some (v, !expected) else incr expected;
          tries := 0;
          if Random.State.int rng 4096 = 0 then Unix.sleepf 5e-5
      | None ->
          incr tries;
          backoff !tries
    done;
    (!expected, !bad)
  in
  let cons = Domain.spawn consumer in
  producer ();
  let got, bad = Domain.join cons in
  (match bad with
  | Some (v, e) ->
      Alcotest.failf "sequence broken: got %d where %d was expected" v e
  | None -> ());
  Alcotest.(check int) "every message delivered exactly once, in order" n got;
  Alcotest.(check bool) "queue drained" true (Spsc.is_empty q)

let test_spsc_basic () =
  let q = Spsc.create ~capacity:4 () in
  Alcotest.(check bool) "empty" true (Spsc.is_empty q);
  Alcotest.(check bool) "push 1" true (Spsc.try_push q 1);
  Alcotest.(check bool) "push 2" true (Spsc.try_push q 2);
  Alcotest.(check (option int)) "peek" (Some 1) (Spsc.peek q);
  Alcotest.(check (option int)) "pop 1" (Some 1) (Spsc.try_pop q);
  Alcotest.(check (option int)) "pop 2" (Some 2) (Spsc.try_pop q);
  Alcotest.(check (option int)) "pop empty" None (Spsc.try_pop q)

let test_spsc_full () =
  let q = Spsc.create ~capacity:4 () in
  for i = 1 to 4 do
    Alcotest.(check bool) "fills" true (Spsc.try_push q i)
  done;
  Alcotest.(check bool) "full refuses" false (Spsc.try_push q 5);
  Alcotest.(check (option int)) "pop" (Some 1) (Spsc.try_pop q);
  Alcotest.(check bool) "room again" true (Spsc.try_push q 5)

let test_spsc_capacity_rounds_up () =
  let q = Spsc.create ~capacity:5 () in
  Alcotest.(check int) "rounded to 8" 8 (Spsc.capacity q)

let test_spsc_wraparound () =
  let q = Spsc.create ~capacity:4 () in
  for round = 0 to 99 do
    Alcotest.(check bool) "push" true (Spsc.try_push q round);
    Alcotest.(check (option int)) "pop" (Some round) (Spsc.try_pop q)
  done;
  Alcotest.(check int) "length 0" 0 (Spsc.length q)

let test_spsc_cross_domain () =
  (* Producer domain pushes 100k ints; consumer (this domain) pops and
     sums. Checks the ring is safe across real parallel domains. *)
  let n = 100_000 in
  let q = Spsc.create ~capacity:1024 () in
  let producer =
    Domain.spawn (fun () ->
        let i = ref 0 in
        while !i < n do
          if Spsc.try_push q !i then incr i
        done)
  in
  let sum = ref 0 and got = ref 0 in
  while !got < n do
    match Spsc.try_pop q with
    | Some v ->
        sum := !sum + v;
        incr got
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  Alcotest.(check int) "all values received in order-sum" (n * (n - 1) / 2) !sum

let test_spsc_ordering_cross_domain () =
  let n = 50_000 in
  let q = Spsc.create ~capacity:64 () in
  let producer =
    Domain.spawn (fun () ->
        let i = ref 0 in
        while !i < n do
          if Spsc.try_push q !i then incr i
        done)
  in
  let expected = ref 0 and ok = ref true in
  while !expected < n do
    match Spsc.try_pop q with
    | Some v ->
        if v <> !expected then ok := false;
        incr expected
    | None -> Domain.cpu_relax ()
  done;
  Domain.join producer;
  Alcotest.(check bool) "FIFO order preserved across domains" true !ok

let test_pool_alloc_free () =
  let p = Pool.create ~id:1 ~slots:4 ~slot_size:64 in
  Alcotest.(check int) "all free" 4 (Pool.free_slots p);
  let ptr = Pool.alloc p ~len:10 in
  Alcotest.(check int) "one used" 1 (Pool.in_use p);
  Pool.write p ptr ~src:(Bytes.of_string "0123456789") ~src_off:0;
  Alcotest.(check string) "readback" "0123456789" (Bytes.to_string (Pool.read p ptr));
  Pool.free p ptr;
  Alcotest.(check int) "freed" 0 (Pool.in_use p)

let test_pool_stale_detection () =
  let p = Pool.create ~id:2 ~slots:2 ~slot_size:16 in
  let ptr = Pool.alloc p ~len:8 in
  Pool.free p ptr;
  Alcotest.check_raises "read after free" (Pool.Stale_pointer ptr) (fun () ->
      ignore (Pool.read p ptr));
  Alcotest.check_raises "double free" (Pool.Double_free ptr) (fun () ->
      Pool.free p ptr)

let test_pool_double_free_vs_stale () =
  (* A second free of the same allocation is a distinct bug class from a
     late free of a recycled slot: the former raises [Double_free], the
     latter [Stale_pointer]. *)
  let p = Pool.create ~id:20 ~slots:1 ~slot_size:16 in
  let ptr1 = Pool.alloc p ~len:4 in
  Pool.free p ptr1;
  let ptr2 = Pool.alloc p ~len:4 in
  Alcotest.(check int) "slot recycled" ptr1.Rich_ptr.slot ptr2.Rich_ptr.slot;
  Alcotest.check_raises "free through old generation is stale"
    (Pool.Stale_pointer ptr1) (fun () -> Pool.free p ptr1);
  Alcotest.(check bool) "current allocation unharmed" true (Pool.live p ptr2);
  Pool.free p ptr2;
  Alcotest.check_raises "second free of same allocation is a double free"
    (Pool.Double_free ptr2) (fun () -> Pool.free p ptr2);
  Alcotest.(check int) "free list not corrupted" 1 (Pool.free_slots p)

let test_pool_free_after_crash_reclaim_is_stale () =
  (* [free_all] models the owner's crash: stragglers freeing afterwards
     hold merely stale pointers, not double frees. *)
  let p = Pool.create ~id:21 ~slots:2 ~slot_size:8 in
  let ptr = Pool.alloc p ~len:4 in
  Pool.free_all p;
  Alcotest.check_raises "late free after crash reclaim"
    (Pool.Stale_pointer ptr) (fun () -> Pool.free p ptr)

let test_pool_generation_reuse () =
  let p = Pool.create ~id:3 ~slots:1 ~slot_size:16 in
  let ptr1 = Pool.alloc p ~len:4 in
  Pool.free p ptr1;
  let ptr2 = Pool.alloc p ~len:4 in
  (* Same slot, new generation: the old pointer must stay dead. *)
  Alcotest.(check int) "same slot" ptr1.Rich_ptr.slot ptr2.Rich_ptr.slot;
  Alcotest.(check bool) "old pointer dead" false (Pool.live p ptr1);
  Alcotest.(check bool) "new pointer live" true (Pool.live p ptr2)

let test_pool_exhaustion () =
  let p = Pool.create ~id:4 ~slots:2 ~slot_size:8 in
  let _ = Pool.alloc p ~len:1 in
  let _ = Pool.alloc p ~len:1 in
  Alcotest.check_raises "exhausted" Pool.Pool_exhausted (fun () ->
      ignore (Pool.alloc p ~len:1))

let test_pool_sub_ptr () =
  let p = Pool.create ~id:5 ~slots:1 ~slot_size:32 in
  let ptr = Pool.alloc p ~len:20 in
  Pool.write p ptr ~src:(Bytes.of_string "abcdefghijklmnopqrst") ~src_off:0;
  let sub = Pool.sub_ptr ptr ~off:5 ~len:3 in
  Alcotest.(check string) "sub view" "fgh" (Bytes.to_string (Pool.read p sub));
  Alcotest.check_raises "oob sub" (Invalid_argument "Pool.sub_ptr: out of chunk bounds")
    (fun () -> ignore (Pool.sub_ptr ptr ~off:15 ~len:10))

let test_pool_free_all () =
  let p = Pool.create ~id:6 ~slots:3 ~slot_size:8 in
  let a = Pool.alloc p ~len:1 in
  let _b = Pool.alloc p ~len:1 in
  Pool.free_all p;
  Alcotest.(check int) "all free" 3 (Pool.free_slots p);
  Alcotest.(check bool) "old pointer dead" false (Pool.live p a)

let test_chain_len () =
  let mk len = { Rich_ptr.pool = 0; slot = 0; off = 0; len; gen = 0 } in
  Alcotest.(check int) "chain length" 60 (Rich_ptr.chain_len [ mk 14; mk 40; mk 6 ]);
  Alcotest.(check int) "empty chain" 0 (Rich_ptr.chain_len [])

let test_request_db_match () =
  let db = Request_db.create () in
  let id1 = Request_db.submit db ~peer:1 ~payload:"a" ~abort:(fun _ _ -> ()) in
  let id2 = Request_db.submit db ~peer:2 ~payload:"b" ~abort:(fun _ _ -> ()) in
  Alcotest.(check bool) "unique ids" true (id1 <> id2);
  Alcotest.(check (option string)) "complete 2" (Some "b") (Request_db.complete db id2);
  Alcotest.(check (option string)) "stale reply ignored" None (Request_db.complete db id2);
  Alcotest.(check int) "one left" 1 (Request_db.outstanding db)

let test_request_db_abort_actions () =
  let db = Request_db.create () in
  let aborted = ref [] in
  let abort _id payload = aborted := payload :: !aborted in
  ignore (Request_db.submit db ~peer:7 ~payload:"x" ~abort);
  ignore (Request_db.submit db ~peer:7 ~payload:"y" ~abort);
  ignore (Request_db.submit db ~peer:8 ~payload:"z" ~abort);
  let n = Request_db.abort_peer db ~peer:7 in
  Alcotest.(check int) "two aborted" 2 n;
  Alcotest.(check (list string)) "abort order = submission order" [ "x"; "y" ]
    (List.rev !aborted);
  Alcotest.(check int) "one request survives" 1 (Request_db.outstanding db);
  Alcotest.(check int) "survivor is to peer 8" 1 (Request_db.outstanding_to db ~peer:8)

let test_request_db_abort_reentrant () =
  (* An abort action that itself calls [abort_peer] — what happens when
     tearing down one peer reveals another doomed one. The nested call
     must defer (returning 0), and the outermost call drains it after
     its own sweep, counting both. *)
  let db = Request_db.create () in
  let aborted = ref [] in
  let plain name _id _payload = aborted := name :: !aborted in
  let nested_count = ref (-1) in
  let reentrant name _id _payload =
    aborted := name :: !aborted;
    (* Re-entering from inside an abort action: must not run peer 9's
       aborts here, just queue them. *)
    nested_count := Request_db.abort_peer db ~peer:9
  in
  ignore (Request_db.submit db ~peer:7 ~payload:() ~abort:(plain "a7"));
  ignore (Request_db.submit db ~peer:7 ~payload:() ~abort:(reentrant "b7"));
  ignore (Request_db.submit db ~peer:9 ~payload:() ~abort:(plain "c9"));
  ignore (Request_db.submit db ~peer:8 ~payload:() ~abort:(plain "d8"));
  let n = Request_db.abort_peer db ~peer:7 in
  Alcotest.(check int) "nested call defers and reports 0" 0 !nested_count;
  Alcotest.(check int) "outermost count includes the deferred peer" 3 n;
  Alcotest.(check (list string)) "peer 7 first, deferred peer 9 after"
    [ "a7"; "b7"; "c9" ] (List.rev !aborted);
  Alcotest.(check int) "peer 8 untouched" 1 (Request_db.outstanding db);
  (* Records are removed before aborts run: a second sweep of either
     peer finds nothing. *)
  Alcotest.(check int) "peer 7 already gone" 0 (Request_db.abort_peer db ~peer:7);
  Alcotest.(check int) "peer 9 already gone" 0 (Request_db.abort_peer db ~peer:9)

let test_request_db_abort_resubmit_from_abort () =
  (* The documented contract allows an abort action to submit a fresh
     request (retarget to a restarted peer); the fresh record must
     survive the sweep that triggered it. *)
  let db = Request_db.create () in
  let resubmitted = ref None in
  let abort _id payload =
    resubmitted := Some (Request_db.submit db ~peer:5 ~payload ~abort:(fun _ _ -> ()))
  in
  ignore (Request_db.submit db ~peer:5 ~payload:"retry-me" ~abort);
  let n = Request_db.abort_peer db ~peer:5 in
  Alcotest.(check int) "one aborted" 1 n;
  Alcotest.(check bool) "abort resubmitted" true (!resubmitted <> None);
  Alcotest.(check int) "fresh request survives the sweep" 1
    (Request_db.outstanding_to db ~peer:5)

let test_request_db_ids_globally_unique () =
  (* Identifiers are process-wide, not per-database: a stale reply to a
     pre-crash request must never alias a request a *different* (fresh)
     database just issued. *)
  let a = Request_db.create () and b = Request_db.create () in
  Alcotest.(check bool) "distinct database identities" true
    (Request_db.db_id a <> Request_db.db_id b);
  let noop _ _ = () in
  let ids =
    List.concat_map
      (fun _ ->
        [
          Request_db.submit a ~peer:1 ~payload:() ~abort:noop;
          Request_db.submit b ~peer:1 ~payload:() ~abort:noop;
        ])
      [ (); (); () ]
  in
  Alcotest.(check int) "no id aliases across database instances" 6
    (List.length (List.sort_uniq compare ids))

let test_request_db_abort_cycle_capped () =
  (* Two abort actions that keep resubmitting to and re-aborting each
     other: every drained sweep queues the next one, so the deferral
     never empties and the outermost call must give up with
     [Abort_cycle] instead of looping forever. *)
  let db = Request_db.create () in
  let rec ping _id () =
    ignore (Request_db.submit db ~peer:2 ~payload:() ~abort:pong);
    ignore (Request_db.abort_peer db ~peer:2)
  and pong _id () =
    ignore (Request_db.submit db ~peer:1 ~payload:() ~abort:ping);
    ignore (Request_db.abort_peer db ~peer:1)
  in
  ignore (Request_db.submit db ~peer:1 ~payload:() ~abort:ping);
  (match Request_db.abort_peer db ~peer:1 with
  | (_ : int) -> Alcotest.fail "cyclic abort sweep terminated without a cap"
  | exception Request_db.Abort_cycle { db = reported; peer; depth } ->
      Alcotest.(check int) "names the database" (Request_db.db_id db) reported;
      Alcotest.(check bool) "the queued peer is one of the cycle" true
        (peer = 1 || peer = 2);
      Alcotest.(check int) "stopped at the depth cap" 64 depth);
  (* The failed sweep cleared its deferral state on the way out: a
     plain abort on the same database runs synchronously again (a
     still-set sweeping flag would defer it and return 0). *)
  ignore (Request_db.submit db ~peer:3 ~payload:() ~abort:(fun _ _ -> ()));
  Alcotest.(check int) "database usable after the cap" 1
    (Request_db.abort_peer db ~peer:3)

let test_hook_listener_chain () =
  let before = Hook.enabled () in
  let a = ref 0 and b = ref 0 in
  let ta = Hook.add (fun ~actor:_ _ -> incr a) in
  let tb = Hook.add (fun ~actor:_ _ -> incr b) in
  Fun.protect
    ~finally:(fun () ->
      Hook.remove ta;
      Hook.remove tb)
    (fun () ->
      Alcotest.(check bool) "enabled while registered" true (Hook.enabled ());
      Hook.emit (Hook.Req_reset { db = 424242 });
      Alcotest.(check int) "first listener fed" 1 !a;
      Alcotest.(check int) "second listener fed" 1 !b;
      Hook.remove ta;
      Hook.emit (Hook.Req_reset { db = 424242 });
      Alcotest.(check int) "removed listener silent" 1 !a;
      Alcotest.(check int) "remaining listener still fed" 2 !b;
      (* Removing an already-removed token is a documented no-op. *)
      Hook.remove ta;
      Hook.emit (Hook.Req_reset { db = 424242 });
      Alcotest.(check int) "double remove harmless" 3 !b);
  Alcotest.(check bool) "chain restored" before (Hook.enabled ())

let test_hook_install_facade_coexists () =
  (* The deprecated one-slot [install] must neither displace nor be
     displaced by chain listeners: both checkers see every event. *)
  let legacy = ref 0 and chained = ref 0 in
  let tok = Hook.add (fun ~actor:_ _ -> incr chained) in
  Fun.protect
    ~finally:(fun () ->
      Hook.remove tok;
      Hook.uninstall ())
    (fun () ->
      Hook.install (fun ~actor:_ _ -> incr legacy);
      Hook.emit (Hook.Req_reset { db = 7 });
      Alcotest.(check int) "legacy slot fed" 1 !legacy;
      Alcotest.(check int) "chain listener fed" 1 !chained;
      (* A second install rebinds the single slot; it does not stack. *)
      Hook.install (fun ~actor:_ _ -> legacy := !legacy + 100);
      Hook.emit (Hook.Req_reset { db = 7 });
      Alcotest.(check int) "install rebinds, not stacks" 101 !legacy;
      Alcotest.(check int) "chain unaffected by rebinding" 2 !chained;
      Hook.uninstall ();
      Hook.emit (Hook.Req_reset { db = 7 });
      Alcotest.(check int) "legacy slot gone" 101 !legacy;
      Alcotest.(check int) "chain survives uninstall" 3 !chained)

let test_hook_actor_epoch_bracket () =
  let seen = ref [] in
  let tok = Hook.add (fun ~actor _ -> seen := (actor, Hook.epoch ()) :: !seen) in
  Fun.protect
    ~finally:(fun () -> Hook.remove tok)
    (fun () ->
      Hook.emit (Hook.Req_reset { db = 1 });
      Hook.with_actor ~epoch:3 "ip" (fun () ->
          Hook.emit (Hook.Req_reset { db = 1 }));
      Hook.emit (Hook.Req_reset { db = 1 });
      match List.rev !seen with
      | [ (None, 0); (Some "ip", 3); (None, 0) ] -> ()
      | _ -> Alcotest.fail "actor/epoch bracket not scoped to with_actor")

let test_request_db_ids_never_reused () =
  let db = Request_db.create () in
  let id1 = Request_db.submit db ~peer:1 ~payload:0 ~abort:(fun _ _ -> ()) in
  ignore (Request_db.complete db id1);
  let id2 = Request_db.submit db ~peer:1 ~payload:0 ~abort:(fun _ _ -> ()) in
  Alcotest.(check bool) "fresh id after completion" true (id2 <> id1)

let test_pubsub_basic () =
  let ps = Pubsub.create () in
  let seen = ref [] in
  Pubsub.subscribe ps ~key:"ip.rx" (fun ev -> seen := ev :: !seen);
  Alcotest.(check int) "nothing yet" 0 (List.length !seen);
  Pubsub.publish ps ~key:"ip.rx" ~creator:3 ~chan_id:42;
  (match !seen with
  | [ `Published p ] ->
      Alcotest.(check int) "creator" 3 p.Pubsub.creator;
      Alcotest.(check int) "chan id" 42 p.Pubsub.chan_id
  | _ -> Alcotest.fail "expected one publication event");
  Pubsub.unpublish ps ~key:"ip.rx";
  Alcotest.(check bool) "gone event" true
    (match !seen with `Gone :: _ -> true | _ -> false)

let test_pubsub_replay_to_late_subscriber () =
  let ps = Pubsub.create () in
  Pubsub.publish ps ~key:"tcp.rx" ~creator:1 ~chan_id:7;
  let seen = ref None in
  Pubsub.subscribe ps ~key:"tcp.rx" (fun ev -> seen := Some ev);
  match !seen with
  | Some (`Published p) -> Alcotest.(check int) "replayed chan id" 7 p.Pubsub.chan_id
  | _ -> Alcotest.fail "late subscriber did not get replay"

let test_pubsub_republish_keeps_id () =
  let ps = Pubsub.create () in
  let ids = ref [] in
  Pubsub.subscribe ps ~key:"drv.0" (fun ev ->
      match ev with `Published p -> ids := p.Pubsub.chan_id :: !ids | `Gone -> ());
  Pubsub.publish ps ~key:"drv.0" ~creator:9 ~chan_id:5;
  (* Restarted creator republished the same identification. *)
  Pubsub.publish ps ~key:"drv.0" ~creator:9 ~chan_id:5;
  Alcotest.(check (list int)) "both publications delivered" [ 5; 5 ] !ids

let test_registry_register_replace () =
  let module Registry = Newt_channels.Registry in
  let reg = Registry.create () in
  let old_pool = Pool.create ~id:7 ~slots:2 ~slot_size:16 in
  let new_pool = Pool.create ~id:7 ~slots:2 ~slot_size:64 in
  Registry.register reg old_pool;
  Alcotest.(check int) "resolves to first" 16 (Pool.slot_size (Registry.find reg 7));
  (* A restarted owner re-creates the pool and re-registers the id. *)
  Registry.register reg new_pool;
  Alcotest.(check int) "replaced by re-registration" 64
    (Pool.slot_size (Registry.find reg 7))

let test_registry_unregister () =
  let module Registry = Newt_channels.Registry in
  let reg = Registry.create () in
  let pool = Pool.create ~id:9 ~slots:2 ~slot_size:16 in
  Registry.register reg pool;
  (* Unknown ids are a documented no-op: teardown paths may race. *)
  Registry.unregister reg ~id:424242;
  Alcotest.(check int) "registered pool survives stray withdrawal" 16
    (Pool.slot_size (Registry.find reg 9));
  Registry.unregister reg ~id:9;
  Alcotest.check_raises "withdrawn" (Registry.Unknown_pool 9) (fun () ->
      ignore (Registry.find reg 9));
  (* Second withdrawal of the same id is equally harmless. *)
  Registry.unregister reg ~id:9

let test_pubsub_replay_order_after_restart () =
  (* A restarted replica re-warms via [replay_prefix]; a republished key
     must land at the position of its *latest* publication so the
     replica converges to the same state as peers that heard the
     updates live. *)
  let ps = Pubsub.create () in
  Pubsub.publish ps ~key:"arp.1" ~creator:1 ~chan_id:11;
  Pubsub.publish ps ~key:"arp.2" ~creator:1 ~chan_id:12;
  Pubsub.publish ps ~key:"arp.3" ~creator:1 ~chan_id:13;
  (* The binding for arp.1 is refreshed after arp.3 was learned. *)
  Pubsub.publish ps ~key:"arp.1" ~creator:2 ~chan_id:21;
  let order = ref [] in
  Pubsub.replay_prefix ps ~prefix:"arp." (fun ev ->
      match ev with
      | `Published p -> order := (p.Pubsub.key, p.Pubsub.chan_id) :: !order
      | `Gone -> ());
  Alcotest.(check (list (pair string int)))
    "replay in publish order, republished key moved to latest position"
    [ ("arp.2", 12); ("arp.3", 13); ("arp.1", 21) ]
    (List.rev !order);
  (* A late prefix subscriber sees the same history. *)
  let order2 = ref [] in
  Pubsub.subscribe_prefix ps ~prefix:"arp." (fun ev ->
      match ev with
      | `Published p -> order2 := p.Pubsub.chan_id :: !order2
      | `Gone -> ());
  Alcotest.(check (list int)) "subscribe_prefix replays same order" [ 12; 13; 21 ]
    (List.rev !order2)

let test_sim_chan_send_recv () =
  let c = Sim_chan.create ~capacity:2 ~id:0 () in
  Alcotest.(check bool) "send 1" true (Sim_chan.send c "m1");
  Alcotest.(check bool) "send 2" true (Sim_chan.send c "m2");
  Alcotest.(check bool) "full drops" false (Sim_chan.send c "m3");
  Alcotest.(check (option string)) "recv" (Some "m1") (Sim_chan.recv c);
  Alcotest.(check int) "dropped counted" 1 (Sim_chan.dropped_total c);
  Alcotest.(check int) "sent counted" 2 (Sim_chan.sent_total c)

let test_sim_chan_notify_on_empty_enqueue () =
  let c = Sim_chan.create ~id:1 () in
  let wakes = ref 0 in
  Sim_chan.set_notify c (fun () -> incr wakes);
  ignore (Sim_chan.send c 1);
  ignore (Sim_chan.send c 2);
  Alcotest.(check int) "one wake for burst" 1 !wakes;
  ignore (Sim_chan.recv c);
  ignore (Sim_chan.recv c);
  ignore (Sim_chan.send c 3);
  Alcotest.(check int) "wakes again after drain" 2 !wakes

let test_sim_chan_teardown_revive () =
  let c = Sim_chan.create ~id:2 () in
  ignore (Sim_chan.send c 1);
  Sim_chan.tear_down c;
  Alcotest.(check bool) "down" true (Sim_chan.is_down c);
  Alcotest.(check bool) "send fails" false (Sim_chan.send c 2);
  Alcotest.(check (option int)) "recv fails" None (Sim_chan.recv c);
  Sim_chan.revive c;
  Alcotest.(check bool) "up again" false (Sim_chan.is_down c);
  Alcotest.(check (option int)) "queue was flushed" None (Sim_chan.recv c);
  Alcotest.(check bool) "send works" true (Sim_chan.send c 3)

let qtest name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:200 ~name gen f)

let test_pool_invariants =
  qtest "pool alloc/free sequences preserve invariants"
    QCheck2.Gen.(list_size (int_range 1 200) (int_range 0 99))
    (fun ops ->
      let p = Pool.create ~id:12345 ~slots:8 ~slot_size:32 in
      let live = ref [] in
      let ok = ref true in
      List.iter
        (fun op ->
          if op mod 2 = 0 || !live = [] then begin
            (* Allocate (may legitimately exhaust). *)
            match Pool.alloc p ~len:16 with
            | ptr ->
                Pool.write p ptr ~src:(Bytes.make 16 (Char.chr (op land 0xff))) ~src_off:0;
                live := ptr :: !live
            | exception Pool.Pool_exhausted ->
                if List.length !live <> 8 then ok := false
          end
          else begin
            (* Free a random live pointer; it must die, others live. *)
            let i = op mod List.length !live in
            let victim = List.nth !live i in
            live := List.filteri (fun j _ -> j <> i) !live;
            Pool.free p victim;
            if Pool.live p victim then ok := false
          end;
          (* Global invariants after every step. *)
          if Pool.in_use p <> List.length !live then ok := false;
          if Pool.free_slots p + Pool.in_use p <> 8 then ok := false;
          List.iter (fun ptr -> if not (Pool.live p ptr) then ok := false) !live)
        ops;
      !ok)

let test_request_db_invariants =
  qtest "request db submit/complete/abort sequences"
    QCheck2.Gen.(list_size (int_range 1 150) (tup2 (int_range 0 2) (int_range 0 4)))
    (fun ops ->
      let db = Request_db.create () in
      let live = Hashtbl.create 16 in
      let aborted = ref 0 in
      let ok = ref true in
      List.iter
        (fun (kind, peer) ->
          match kind with
          | 0 ->
              let id = Request_db.submit db ~peer ~payload:peer ~abort:(fun _ _ -> incr aborted) in
              if Hashtbl.mem live id then ok := false (* ids must be fresh *);
              Hashtbl.replace live id peer
          | 1 -> (
              (* Complete a random live id if any. *)
              match Hashtbl.fold (fun id p acc -> (id, p) :: acc) live [] with
              | [] -> ()
              | (id, p) :: _ -> (
                  Hashtbl.remove live id;
                  match Request_db.complete db id with
                  | Some payload -> if payload <> p then ok := false
                  | None -> ok := false))
          | _ ->
              let expected =
                Hashtbl.fold (fun _ p acc -> if p = peer then acc + 1 else acc) live 0
              in
              let before = !aborted in
              let n = Request_db.abort_peer db ~peer in
              if n <> expected then ok := false;
              if !aborted - before <> expected then ok := false;
              Hashtbl.iter (fun id p -> if p = peer then Hashtbl.remove live id) live)
        ops;
      !ok && Request_db.outstanding db = Hashtbl.length live)

let suite =
  [
    ("spsc push/pop", `Quick, test_spsc_basic);
    ("spsc refuses when full", `Quick, test_spsc_full);
    ("spsc capacity rounds to power of two", `Quick, test_spsc_capacity_rounds_up);
    ("spsc index wraparound", `Quick, test_spsc_wraparound);
    ("spsc cross-domain transfer", `Quick, test_spsc_cross_domain);
    ("spsc cross-domain FIFO order", `Quick, test_spsc_ordering_cross_domain);
    ("spsc cross-domain randomized stress (1M msgs)", `Slow,
      test_spsc_cross_domain_stress);
    ("pool alloc/write/read/free", `Quick, test_pool_alloc_free);
    ("pool stale pointers detected", `Quick, test_pool_stale_detection);
    ("pool double free vs stale free", `Quick, test_pool_double_free_vs_stale);
    ("pool free after crash reclaim is stale", `Quick,
      test_pool_free_after_crash_reclaim_is_stale);
    ("pool generations on slot reuse", `Quick, test_pool_generation_reuse);
    ("pool exhaustion raises", `Quick, test_pool_exhaustion);
    ("pool sub pointers", `Quick, test_pool_sub_ptr);
    ("pool free_all", `Quick, test_pool_free_all);
    ("rich pointer chain length", `Quick, test_chain_len);
    ("request db matches replies", `Quick, test_request_db_match);
    ("request db abort actions on peer crash", `Quick, test_request_db_abort_actions);
    ("request db re-entrant abort_peer defers", `Quick,
      test_request_db_abort_reentrant);
    ("request db abort may resubmit", `Quick,
      test_request_db_abort_resubmit_from_abort);
    ("request db never reuses ids", `Quick, test_request_db_ids_never_reused);
    ("request db ids unique across instances", `Quick,
      test_request_db_ids_globally_unique);
    ("request db cyclic aborts hit the depth cap", `Quick,
      test_request_db_abort_cycle_capped);
    ("hook listener chain add/remove", `Quick, test_hook_listener_chain);
    ("hook legacy install coexists with the chain", `Quick,
      test_hook_install_facade_coexists);
    ("hook actor/epoch bracket", `Quick, test_hook_actor_epoch_bracket);
    ("pubsub publish/subscribe", `Quick, test_pubsub_basic);
    ("pubsub replays to late subscriber", `Quick, test_pubsub_replay_to_late_subscriber);
    ("pubsub republish after restart", `Quick, test_pubsub_republish_keeps_id);
    ("registry re-registration replaces", `Quick, test_registry_register_replace);
    ("registry unregister unknown id is no-op", `Quick, test_registry_unregister);
    ("pubsub replay order after restart", `Quick,
      test_pubsub_replay_order_after_restart);
    ("sim channel send/recv/drop", `Quick, test_sim_chan_send_recv);
    ("sim channel notifies on empty enqueue", `Quick, test_sim_chan_notify_on_empty_enqueue);
    ("sim channel teardown and revive", `Quick, test_sim_chan_teardown_revive);
    test_pool_invariants;
    test_request_db_invariants;
  ]
