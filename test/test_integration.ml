(* Full-system integration tests: a complete NewtOS host (all servers on
   their cores, NIC, wire, remote peer) driven through the POSIX-like
   socket layer. These are the behaviours the paper's evaluation
   depends on: bulk throughput, inbound accept, crash recovery of every
   component, state restoration from the storage server, the SYSCALL
   server's resubmission, and the no-loss property of the filter. *)

module Host = Newt_core.Host
module Apps = Newt_sockets.Apps
module Socket_api = Newt_sockets.Socket_api
module Sink = Newt_stack.Sink
module Time = Newt_sim.Time
module Tcp = Newt_net.Tcp
module Rng = Newt_sim.Rng
module Pf_engine = Newt_pf.Pf_engine

let sec = Time.of_seconds

let make_host ?(seed = 42) ?(rules = [ Newt_pf.Rule.pass_all ]) () =
  let config = { Host.default_config with Host.seed; pf_rules = rules } in
  Host.create ~config ()

let test_bulk_throughput_near_wire () =
  let h = make_host () in
  let peer = Host.sink h 0 in
  let received = ref 0 in
  Sink.sink_tcp peer ~port:5001 ~on_bytes:(fun ~at:_ n -> received := !received + n);
  let _ =
    Apps.Iperf.start (Host.machine h) ~sc:(Host.sc h) ~app:(Host.app h)
      ~dst:(Host.sink_addr h 0) ~port:5001 ~until:(sec 1.0) ()
  in
  Host.run h ~until:(sec 1.1);
  let mbps = float_of_int !received *. 8.0 /. 1e6 in
  Alcotest.(check bool)
    (Printf.sprintf "gigabit-class throughput (got %.0f Mbps)" mbps)
    true (mbps > 900.0);
  Alcotest.(check int) "no checksum failures" 0 (Sink.checksum_failures peer)

let test_inbound_accept_and_echo () =
  let h = make_host () in
  Apps.Echo_listener.start (Host.sc h) ~app:(Host.app h) ~port:22;
  Host.run h ~until:(sec 0.1);
  (* The peer connects in and sends a line. *)
  let peer = Host.sink h 0 in
  let got_echo = ref "" in
  let pcb = Sink.connect peer ~dst:(Host.local_addr h 0) ~dst_port:22 in
  Tcp.set_handler pcb (fun ev ->
      match ev with
      | Tcp.Connected -> ignore (Tcp.send pcb (Bytes.of_string "hello newtos"))
      | Tcp.Readable -> got_echo := Bytes.to_string (Tcp.recv pcb ~max:100)
      | _ -> ());
  Host.run h ~until:(sec 1.0);
  Alcotest.(check string) "echoed through the whole stack" "hello newtos" !got_echo

let test_udp_roundtrip_via_syscalls () =
  let h = make_host () in
  let peer = Host.sink h 0 in
  Sink.serve_udp peer ~port:53 (fun q -> Some (Bytes.cat q (Bytes.of_string "!")));
  let answer = ref "" in
  Socket_api.udp_socket (Host.sc h) (Host.app h) (fun conn ->
      Socket_api.connect conn ~dst:(Host.sink_addr h 0) ~port:53 (fun _ ->
          Socket_api.send conn (Bytes.of_string "query") (fun _ ->
              Socket_api.recv conn ~max:100 (fun r ->
                  match r with `Data d -> answer := Bytes.to_string d | _ -> ()))));
  Host.run h ~until:(sec 1.0);
  Alcotest.(check string) "udp request/response" "query!" !answer

let test_recv_timeout () =
  let h = make_host () in
  let timed_out = ref false in
  Socket_api.udp_socket (Host.sc h) (Host.app h) (fun conn ->
      Socket_api.connect conn ~dst:(Host.sink_addr h 0) ~port:9 (fun _ ->
          (* Nobody will answer the discard port. *)
          Socket_api.send conn (Bytes.of_string "anyone?") (fun _ ->
              Socket_api.recv conn ~max:10 ~timeout:(sec 0.3) (fun r ->
                  if r = `Timeout then timed_out := true))));
  Host.run h ~until:(sec 1.0);
  Alcotest.(check bool) "SO_RCVTIMEO semantics" true !timed_out

let test_tcp_crash_breaks_connections_but_listeners_recover () =
  let h = make_host () in
  let peer = Host.sink h 0 in
  Sink.serve_tcp_echo peer ~port:22;
  Apps.Echo_listener.start (Host.sc h) ~app:(Host.app h) ~port:2222;
  let ssh =
    Apps.Ssh_session.start (Host.machine h) ~sc:(Host.sc h) ~app:(Host.app h)
      ~dst:(Host.sink_addr h 0) ~port:22 ()
  in
  Host.at h (sec 1.0) (fun () -> Host.kill_component h Host.C_tcp);
  let reachable = ref false in
  Host.at h (sec 2.0) (fun () ->
      Host.probe_reachable h ~port:2222 ~timeout:(sec 1.0) (fun ok -> reachable := ok));
  Host.run h ~until:(sec 4.0);
  (* Established connections die (Table I: TCP state unrecoverable)... *)
  Alcotest.(check bool) "established session broke" true (Apps.Ssh_session.broken ssh);
  (* ...but listening sockets come back from the storage server. *)
  Alcotest.(check bool) "listener recovered, new connections accepted" true !reachable;
  Alcotest.(check int) "exactly one restart" 1 (Host.restarts_of h Host.C_tcp)

let test_listen_backlog_refuses_overflow () =
  (* Regression: the accept queue used to grow without bound — a
     listener that never accepts absorbed every handshake. With the
     backlog cap, completions past the cap are RST and counted. *)
  let h = make_host () in
  Socket_api.tcp_socket (Host.sc h) (Host.app h) (fun l ->
      Socket_api.bind l ~port:2222 (fun _ ->
          Socket_api.listen ~backlog:2 l (fun _ -> (* never accepts *) ())));
  Host.run h ~until:(sec 0.1);
  let peer = Host.sink h 0 in
  let resets = ref 0 in
  let dial n =
    for _ = 1 to n do
      let pcb = Sink.connect peer ~dst:(Host.local_addr h 0) ~dst_port:2222 in
      Tcp.set_handler pcb (fun ev -> if ev = Tcp.Reset then incr resets)
    done
  in
  dial 8;
  Host.run h ~until:(sec 1.0);
  Alcotest.(check int) "six of eight refused at the backlog" 6
    (Newt_stack.Tcp_srv.listen_overflows (Host.tcp_srv h));
  Alcotest.(check int) "each refusal RST the client" 6 !resets;
  (* The cap is part of the listener's persisted state: it survives a
     TCP server crash (the queued-but-unaccepted handshakes die with
     the server; the restored listener enforces the same backlog). *)
  Host.at h (sec 1.1) (fun () -> Host.kill_component h Host.C_tcp);
  Host.run h ~until:(sec 3.0);
  resets := 0;
  dial 8;
  Host.run h ~until:(sec 4.0);
  Alcotest.(check int) "restored listener still caps at two" 6 !resets;
  Alcotest.(check int) "exactly one restart" 1 (Host.restarts_of h Host.C_tcp)

let test_udp_crash_transparent () =
  let h = make_host () in
  let peer = Host.sink h 0 in
  Sink.serve_dns peer ~zone:(fun _ -> Some (Host.sink_addr h 0)) ();
  let dns =
    Apps.Dns_client.start (Host.machine h) ~sc:(Host.sc h) ~app:(Host.app h)
      ~dst:(Host.sink_addr h 0) ~timeout:(sec 0.5) ()
  in
  Host.at h (sec 1.0) (fun () -> Host.kill_component h Host.C_udp);
  Host.run h ~until:(sec 4.0);
  Alcotest.(check int) "socket never reopened" 0 (Apps.Dns_client.socket_reopens dns);
  Alcotest.(check bool) "resolver kept working (brief blip at most)" true
    (Apps.Dns_client.max_consecutive_failures dns <= 2);
  Alcotest.(check bool) "queries answered after the crash" true
    (Apps.Dns_client.answered dns > 8)

let test_ip_crash_recovers_with_duplicates_not_losses () =
  let h = make_host () in
  let peer = Host.sink h 0 in
  let received = ref 0 in
  Sink.sink_tcp peer ~port:5001 ~on_bytes:(fun ~at:_ n -> received := !received + n);
  let iperf =
    Apps.Iperf.start (Host.machine h) ~sc:(Host.sc h) ~app:(Host.app h)
      ~dst:(Host.sink_addr h 0) ~port:5001 ~until:(sec 4.0) ()
  in
  Host.at h (sec 1.0) (fun () -> Host.kill_component h Host.C_ip);
  Host.run h ~until:(sec 6.0);
  (* The flow rode out the crash: everything sent was delivered. *)
  Alcotest.(check int) "no bytes lost end-to-end" (Apps.Iperf.bytes_sent iperf) !received;
  Alcotest.(check bool) "flow resumed after the NIC reset" true
    (float_of_int !received *. 8.0 /. 4.0 /. 1e6 > 500.0);
  Alcotest.(check int) "routes restored from storage" 1
    (List.length (Newt_stack.Ip_srv.routes (Host.ip_srv h)));
  Alcotest.(check int) "one ip restart" 1 (Host.restarts_of h Host.C_ip);
  Alcotest.(check bool) "ip resubmission preferred duplicates" true
    ((Tcp.stats (Sink.tcp peer)).Tcp.dup_segs_in >= 0)

let test_pf_crash_loses_no_packets () =
  let rules = Pf_engine.generate_ruleset (Rng.create 3) ~n:1024 ~protect_port:5001 in
  let h = make_host ~rules () in
  let peer = Host.sink h 0 in
  Sink.sink_tcp peer ~port:5001 ~on_bytes:(fun ~at:_ _ -> ());
  let _ =
    Apps.Iperf.start (Host.machine h) ~sc:(Host.sc h) ~app:(Host.app h)
      ~dst:(Host.sink_addr h 0) ~port:5001 ~until:(sec 3.0) ()
  in
  Host.at h (sec 1.0) (fun () -> Host.kill_component h Host.C_pf);
  Host.at h (sec 2.0) (fun () -> Host.kill_component h Host.C_pf);
  Host.run h ~until:(sec 4.0);
  let sender = Newt_stack.Tcp_srv.engine (Host.tcp_srv h) in
  Alcotest.(check int) "zero retransmissions across two pf crashes" 0
    (Tcp.stats sender).Tcp.retransmits;
  Alcotest.(check int) "two restarts" 2 (Host.restarts_of h Host.C_pf);
  Alcotest.(check int) "1024 rules recovered" 1024
    (Newt_stack.Pf_srv.rule_count (Host.pf_srv h))

let test_pf_restores_conntrack_from_tcp () =
  let h = make_host () in
  let peer = Host.sink h 0 in
  Sink.sink_tcp peer ~port:5001 ~on_bytes:(fun ~at:_ _ -> ());
  let _ =
    Apps.Iperf.start (Host.machine h) ~sc:(Host.sc h) ~app:(Host.app h)
      ~dst:(Host.sink_addr h 0) ~port:5001 ~until:(sec 3.0) ()
  in
  Host.at h (sec 1.0) (fun () -> Host.kill_component h Host.C_pf);
  Host.run h ~until:(sec 2.0);
  let ct = Pf_engine.conntrack (Newt_stack.Pf_srv.engine_of (Host.pf_srv h)) in
  Alcotest.(check bool) "live connection re-tracked after restart" true
    (Newt_pf.Conntrack.size ct >= 1)

let test_driver_crash_recovers () =
  let h = make_host () in
  let peer = Host.sink h 0 in
  let received = ref 0 in
  Sink.sink_tcp peer ~port:5001 ~on_bytes:(fun ~at:_ n -> received := !received + n);
  let iperf =
    Apps.Iperf.start (Host.machine h) ~sc:(Host.sc h) ~app:(Host.app h)
      ~dst:(Host.sink_addr h 0) ~port:5001 ~until:(sec 4.0) ()
  in
  Host.at h (sec 1.0) (fun () -> Host.kill_component h (Host.C_drv 0));
  Host.run h ~until:(sec 6.0);
  Alcotest.(check int) "no end-to-end loss across driver crash"
    (Apps.Iperf.bytes_sent iperf) !received;
  Alcotest.(check int) "driver restarted" 1 (Host.restarts_of h (Host.C_drv 0))

let test_sc_resubmits_blocked_ops_across_restarts () =
  (* The SYSCALL server remembers the last unfinished operation per
     socket and re-issues it against a restarted transport
     (Section V-D). Observable: a recv blocked in the TCP server when
     it crashes completes with an error from the fresh instance —
     without resubmission the application would hang forever. *)
  let h = make_host () in
  let peer = Host.sink h 0 in
  Sink.serve_tcp_echo peer ~port:22;
  let outcome = ref `Hung in
  Socket_api.tcp_socket (Host.sc h) (Host.app h) (fun conn ->
      Socket_api.connect conn ~dst:(Host.sink_addr h 0) ~port:22 (fun _ ->
          (* Block in recv: the echo server only talks when talked to. *)
          Socket_api.recv conn ~max:100 (fun r ->
              outcome := (match r with `Error _ -> `Errored | _ -> `Other))));
  Host.at h (sec 0.5) (fun () -> Host.kill_component h Host.C_tcp);
  Host.run h ~until:(sec 3.0);
  Alcotest.(check bool)
    "blocked recv was re-issued and answered (no hang)" true (!outcome = `Errored);
  (* And the UDP flavour: a blocked recv rides through a UDP restart
     and still gets answered by a later datagram on the same socket. *)
  Sink.serve_dns peer ~zone:(fun _ -> Some (Host.sink_addr h 0)) ();
  let udp_got = ref false in
  Socket_api.udp_socket (Host.sc h) (Host.app h) (fun conn ->
      Socket_api.connect conn ~dst:(Host.sink_addr h 0) ~port:53 (fun _ ->
          (* recv first — nothing is in flight yet. *)
          Socket_api.recv conn ~max:100 (fun r ->
              if (match r with `Data _ -> true | _ -> false) then udp_got := true)));
  Host.at h (sec 3.5) (fun () -> Host.kill_component h Host.C_udp);
  (* After the restart, a fresh query from a second socket cannot wake
     the first, but the SYSCALL server has re-issued the blocked recv:
     prove the op is live by steering a datagram at the socket through
     the echo responder — we simply send from the same app via a second
     socket bound to the same flow is impossible, so use the fact that
     the sink replies to the original port: send the query before
     blocking next time. Here: just verify the op did not vanish. *)
  Host.run h ~until:(sec 5.0);
  Alcotest.(check int) "the re-issued op is pending at the syscall server" 1
    (Newt_stack.Syscall_srv.outstanding_calls (Host.sc h));
  Alcotest.(check bool) "and was not spuriously answered" true (not !udp_got)

let test_sync_hang_freezes_everything () =
  let h = make_host () in
  let inj =
    {
      Newt_reliability.Fault_inject.target = Newt_reliability.Fault_inject.T_pf;
      effect = Newt_reliability.Fault_inject.Sync_hang;
    }
  in
  Host.at h (sec 0.5) (fun () -> Host.inject h inj);
  let answered = ref false in
  Host.at h (sec 1.0) (fun () ->
      Socket_api.tcp_socket (Host.sc h) (Host.app h) (fun _ -> answered := true));
  Host.run h ~until:(sec 3.0);
  Alcotest.(check bool) "host frozen" true (Host.frozen h);
  Alcotest.(check bool) "system calls stop completing" false !answered

let test_live_update_udp_under_tcp_traffic () =
  let h = make_host () in
  let peer = Host.sink h 0 in
  let received = ref 0 in
  Sink.sink_tcp peer ~port:5001 ~on_bytes:(fun ~at:_ n -> received := !received + n);
  let iperf =
    Apps.Iperf.start (Host.machine h) ~sc:(Host.sc h) ~app:(Host.app h)
      ~dst:(Host.sink_addr h 0) ~port:5001 ~until:(sec 2.0) ()
  in
  (* DNS traffic rides through the swap untouched. *)
  let peer_udp_echo = Host.sink h 0 in
  Sink.serve_dns peer_udp_echo ~zone:(fun _ -> Some (Host.sink_addr h 0)) ();
  let dns =
    Apps.Dns_client.start (Host.machine h) ~sc:(Host.sc h) ~app:(Host.app h)
      ~dst:(Host.sink_addr h 0) ~timeout:(sec 0.5) ()
  in
  Host.at h (sec 1.0) (fun () -> Host.live_update h Host.C_udp);
  Host.run h ~until:(sec 3.0);
  Alcotest.(check int) "tcp stream completely unaffected by udp update"
    (Apps.Iperf.bytes_sent iperf) !received;
  Alcotest.(check int) "zero tcp retransmissions" 0
    (Tcp.stats (Newt_stack.Tcp_srv.engine (Host.tcp_srv h))).Tcp.retransmits;
  Alcotest.(check int) "new code version running" 2
    (Newt_stack.Proc.version (Host.proc_of h Host.C_udp));
  Alcotest.(check int) "graceful: no crash/restart involved" 0
    (Host.restarts_of h Host.C_udp);
  Alcotest.(check int) "udp messages queued through the swap, none lost" 0
    (Apps.Dns_client.max_consecutive_failures dns)

let test_broken_recovery_needs_manual_restart () =
  let h = make_host () in
  Apps.Echo_listener.start (Host.sc h) ~app:(Host.app h) ~port:22;
  Host.run h ~until:(sec 0.2);
  let inj =
    {
      Newt_reliability.Fault_inject.target = Newt_reliability.Fault_inject.T_tcp;
      effect = Newt_reliability.Fault_inject.Broken_recovery;
    }
  in
  Host.at h (sec 0.5) (fun () -> Host.inject h inj);
  let auto = ref true and after_manual = ref false in
  Host.at h (sec 2.0) (fun () ->
      Host.probe_reachable h ~port:22 ~timeout:(sec 0.8) (fun ok -> auto := ok));
  Host.at h (sec 3.0) (fun () -> Host.manual_restart h Host.C_tcp);
  Host.at h (sec 4.5) (fun () ->
      Host.probe_reachable h ~port:22 ~timeout:(sec 0.8) (fun ok -> after_manual := ok));
  Host.run h ~until:(sec 6.0);
  Alcotest.(check bool) "broken after automatic restart" false !auto;
  Alcotest.(check bool) "fixed by manual restart" true !after_manual

let test_misconfigured_device_slowdown () =
  let h = make_host () in
  let peer = Host.sink h 0 in
  let received = ref 0 in
  Sink.sink_tcp peer ~port:5001 ~on_bytes:(fun ~at:_ n -> received := !received + n);
  let _ =
    Apps.Iperf.start (Host.machine h) ~sc:(Host.sc h) ~app:(Host.app h)
      ~dst:(Host.sink_addr h 0) ~port:5001 ~until:(sec 4.0) ()
  in
  let received_at_crash = ref 0 in
  Host.at h (sec 1.0) (fun () ->
      received_at_crash := !received;
      Host.inject h
        {
          Newt_reliability.Fault_inject.target = Newt_reliability.Fault_inject.T_drv 0;
          effect = Newt_reliability.Fault_inject.Misconfigure_device;
        });
  Host.run h ~until:(sec 2.5);
  (* The device silently stopped receiving: ACKs are gone, the flow
     stalls — the paper's "significant slowdown but no crash". *)
  let during = !received - !received_at_crash in
  Alcotest.(check bool) "flow stalled (no crash)" true (during < 10_000_000);
  Alcotest.(check int) "no restart happened" 0 (Host.restarts_of h (Host.C_drv 0));
  (* Manual driver restart resets the device and cures it. *)
  Host.manual_restart h (Host.C_drv 0);
  let before_fix = !received in
  Host.run h ~until:(sec 4.5);
  Alcotest.(check bool) "traffic resumed after the reset" true (!received > before_fix)

let test_storage_holds_all_component_state () =
  let h = make_host () in
  Apps.Echo_listener.start (Host.sc h) ~app:(Host.app h) ~port:22;
  Socket_api.udp_socket (Host.sc h) (Host.app h) (fun conn ->
      Socket_api.bind conn ~port:5353 (fun _ -> ()));
  Host.run h ~until:(sec 0.5);
  let s = Host.storage h in
  Alcotest.(check bool) "ip saved routes" true
    (Newt_reliability.Storage.get s ~owner:"ip" ~key:"routes" <> None);
  Alcotest.(check bool) "pf saved rules" true
    (Newt_reliability.Storage.get s ~owner:"pf" ~key:"rules" <> None);
  Alcotest.(check bool) "tcp saved listeners" true
    (Newt_reliability.Storage.get s ~owner:"tcp" ~key:"listeners" <> None);
  Alcotest.(check bool) "udp saved sockets" true
    (Newt_reliability.Storage.get s ~owner:"udp" ~key:"sockets" <> None)

let test_storage_crash_forces_repersist () =
  (* Section V-D: "If the storage process itself crashes and comes up,
     every other server has to store its state again." A component
     crash after that must still recover. *)
  let h = make_host () in
  Apps.Echo_listener.start (Host.sc h) ~app:(Host.app h) ~port:22;
  Host.run h ~until:(sec 0.3);
  Host.at h (sec 0.5) (fun () -> Host.crash_storage h);
  Host.at h (sec 1.0) (fun () -> Host.kill_component h Host.C_tcp);
  let reachable = ref false in
  Host.at h (sec 2.5) (fun () ->
      Host.probe_reachable h ~port:22 ~timeout:(sec 1.0) (fun ok -> reachable := ok));
  Host.run h ~until:(sec 4.0);
  Alcotest.(check bool) "listener recovered from re-persisted state" true !reachable;
  Alcotest.(check bool) "storage repopulated" true
    (Newt_reliability.Storage.entries (Host.storage h) > 0)

let test_event_sim_cross_validates_capacity_model () =
  let r = Newt_core.Experiments.split_peak_event_sim ~nics:5 ~duration:0.3 () in
  let module E = Newt_core.Experiments in
  Alcotest.(check bool)
    (Printf.sprintf "tcp core saturates (%.0f%%)" (100. *. r.E.tcp_util))
    true (r.E.tcp_util > 0.95);
  Alcotest.(check bool)
    (Printf.sprintf "ip has headroom (%.0f%%)" (100. *. r.E.ip_util))
    true (r.E.ip_util < 0.90);
  Alcotest.(check bool)
    (Printf.sprintf "drivers nearly idle (%.0f%%)" (100. *. r.E.drv_util))
    true (r.E.drv_util < 0.25);
  Alcotest.(check bool)
    (Printf.sprintf "within 40%% of the capacity model (%.2f vs %.2f Gbps)"
       r.E.goodput_gbps r.E.capacity_prediction_gbps)
    true
    (r.E.goodput_gbps > 0.6 *. r.E.capacity_prediction_gbps
    && r.E.goodput_gbps < 1.1 *. r.E.capacity_prediction_gbps);
  (* Fairness across the five flows. *)
  let mn = List.fold_left min infinity r.E.per_link_mbps in
  let mx = List.fold_left max 0.0 r.E.per_link_mbps in
  Alcotest.(check bool)
    (Printf.sprintf "fair sharing (%.0f..%.0f Mbps)" mn mx)
    true
    (mn > 0.7 *. mx)

let test_single_server_beats_split_emergently () =
  (* Table II lines 3 vs 4 at packet level: merging TCP+IP into one
     server removes cross-domain per-request work and wins a few
     percent, at the cost of isolation. *)
  let split = Newt_core.Experiments.split_peak_event_sim ~duration:0.4 () in
  let single_gbps, single_util =
    Newt_core.Experiments.single_server_event_sim ~duration:0.4 ()
  in
  let module E = Newt_core.Experiments in
  Alcotest.(check bool)
    (Printf.sprintf "single (%.2f) > split (%.2f)" single_gbps split.E.goodput_gbps)
    true
    (single_gbps > split.E.goodput_gbps);
  Alcotest.(check bool) "both CPU-bound" true
    (split.E.tcp_util > 0.95 && single_util > 0.95)

let test_minix_baseline_emergent () =
  (* Table II line 1, packet by packet: the synchronous single-core
     stack lands two orders of magnitude below the split stack. *)
  let m = Newt_core.Experiments.minix_event_sim ~duration:1.0 () in
  let module E = Newt_core.Experiments in
  Alcotest.(check bool)
    (Printf.sprintf "hundred-megabit class (got %.0f Mbps)" m.E.minix_mbps)
    true
    (m.E.minix_mbps > 60.0 && m.E.minix_mbps < 400.0);
  Alcotest.(check bool) "lossless despite the pain" true m.E.minix_lossless;
  Alcotest.(check bool)
    (Printf.sprintf "tens of thousands of sync IPCs/s (got %.0f)" m.E.sync_ipcs_per_sec)
    true
    (m.E.sync_ipcs_per_sec > 20_000.0)

let test_mwait_polling_latency_tradeoff () =
  (* Section IV-B: halting the core on every idle gap adds wake-up
     latency on every hop; polling absorbs it. *)
  match Newt_core.Experiments.mwait_latency_ablation () with
  | [ always_halt; default_poll; always_poll ] ->
      let module E = Newt_core.Experiments in
      Alcotest.(check int) "all pings answered (halt)" 50 always_halt.E.pings;
      Alcotest.(check int) "all pings answered (poll)" 50 always_poll.E.pings;
      Alcotest.(check bool)
        (Printf.sprintf "halting is slower than polling (%.1f > %.1f us)"
           always_halt.E.mean_rtt_us always_poll.E.mean_rtt_us)
        true
        (always_halt.E.mean_rtt_us > always_poll.E.mean_rtt_us +. 2.0);
      Alcotest.(check bool) "default sits in between" true
        (default_poll.E.mean_rtt_us >= always_poll.E.mean_rtt_us
        && default_poll.E.mean_rtt_us <= always_halt.E.mean_rtt_us);
      (* The energy side: lower latency is bought with awake time. *)
      Alcotest.(check bool)
        (Printf.sprintf "awake time grows with the poll window (%.2f%% < %.2f%% < %.2f%%)"
           (100. *. always_halt.E.awake_fraction)
           (100. *. default_poll.E.awake_fraction)
           (100. *. always_poll.E.awake_fraction))
        true
        (always_halt.E.awake_fraction < default_poll.E.awake_fraction
        && default_poll.E.awake_fraction < always_poll.E.awake_fraction)
  | _ -> Alcotest.fail "expected three ablation points"

let test_udp_sendto_recvfrom () =
  let h = make_host () in
  let peer = Host.sink h 0 in
  Sink.serve_udp peer ~port:7 (fun q -> Some q);
  let reply = ref None in
  Socket_api.udp_socket (Host.sc h) (Host.app h) (fun conn ->
      Socket_api.sendto conn (Bytes.of_string "datagram")
        ~dst:(Host.sink_addr h 0) ~port:7 (fun _ ->
          Socket_api.recvfrom conn ~max:100 ~timeout:(sec 1.0) (fun r ->
              match r with
              | `Data (data, src, src_port) -> reply := Some (data, src, src_port)
              | `Timeout | `Error _ -> ())));
  Host.run h ~until:(sec 1.0);
  match !reply with
  | Some (data, src, src_port) ->
      Alcotest.(check string) "echoed payload" "datagram" (Bytes.to_string data);
      Alcotest.(check bool) "source address reported" true
        (Newt_net.Addr.Ipv4.equal src (Host.sink_addr h 0));
      Alcotest.(check int) "source port reported" 7 src_port
  | None -> Alcotest.fail "no recvfrom reply"

(* The asynchronous select of the paper's future work (the synchronous
   one caused its only reboot-class failures). *)
let test_select_wakes_on_ready_socket () =
  let h = make_host () in
  let peer = Host.sink h 0 in
  Sink.serve_udp peer ~port:7 (fun q -> Some q);
  let result = ref `Nothing in
  let made = ref [] in
  let app = Host.app h in
  Socket_api.udp_socket (Host.sc h) app (fun c1 ->
      Socket_api.udp_socket (Host.sc h) app (fun c2 ->
          made := [ c1; c2 ];
          Socket_api.connect c1 ~dst:(Host.sink_addr h 0) ~port:9 (fun _ ->
              Socket_api.connect c2 ~dst:(Host.sink_addr h 0) ~port:7 (fun _ ->
                  (* Only c2's peer answers. *)
                  Socket_api.sendto c2 (Bytes.of_string "ping") ~dst:(Host.sink_addr h 0)
                    ~port:7 (fun _ ->
                      Socket_api.select [ c1; c2 ] ~timeout:(sec 2.0) (fun r ->
                          result :=
                            match r with
                            | `Ready ready -> `Ready (List.map Socket_api.sock_id ready)
                            | `Timeout -> `Timeout
                            | `Error e -> `Error e))))));
  Host.run h ~until:(sec 3.0);
  match (!result, !made) with
  | `Ready ready, [ _c1; c2 ] ->
      Alcotest.(check (list int)) "only the socket with data is ready"
        [ Socket_api.sock_id c2 ] ready
  | `Timeout, _ -> Alcotest.fail "select timed out"
  | `Error e, _ -> Alcotest.fail ("select errored: " ^ e)
  | `Nothing, _ -> Alcotest.fail "select never completed"
  | `Ready _, _ -> Alcotest.fail "socket bookkeeping broken"

let test_select_timeout () =
  let h = make_host () in
  let result = ref `Nothing in
  Socket_api.udp_socket (Host.sc h) (Host.app h) (fun c ->
      Socket_api.connect c ~dst:(Host.sink_addr h 0) ~port:9 (fun _ ->
          Socket_api.select [ c ] ~timeout:(sec 0.3) (fun r ->
              result := (match r with `Timeout -> `Timeout | _ -> `Other))));
  Host.run h ~until:(sec 1.0);
  Alcotest.(check bool) "select times out cleanly" true (!result = `Timeout)

let test_select_survives_transport_crash () =
  (* The scenario that forced reboots in the paper: a fault while
     processes wait in select. The asynchronous select rides the crash:
     the SYSCALL server re-issues it against the restarted server. *)
  let h = make_host () in
  let peer = Host.sink h 0 in
  (* The peer learns the client's port but stays silent for now. *)
  let client = ref None in
  Sink.serve_udp_full peer ~port:7 (fun ~src:_ ~src_port q ->
      client := Some src_port;
      ignore q;
      None);
  let result = ref `Nothing in
  Socket_api.udp_socket (Host.sc h) (Host.app h) (fun c ->
      Socket_api.connect c ~dst:(Host.sink_addr h 0) ~port:7 (fun _ ->
          Socket_api.send c (Bytes.of_string "register") (fun _ ->
              Socket_api.select [ c ] (fun r ->
                  result := (match r with `Ready _ -> `Ready | _ -> `Other)))));
  Host.at h (sec 0.5) (fun () -> Host.kill_component h Host.C_udp);
  (* After recovery, the peer pushes a datagram to the watched socket
     (its binding survived via the storage server). *)
  Host.at h (sec 1.5) (fun () ->
      match !client with
      | Some port ->
          Sink.send_udp peer ~dst:(Host.local_addr h 0) ~dst_port:port ~src_port:7
            (Bytes.of_string "wake up")
      | None -> ());
  Host.run h ~until:(sec 3.0);
  Alcotest.(check bool) "the peer saw the registration" true (!client <> None);
  Alcotest.(check bool) "select completed across the crash (no reboot)" true
    (!result = `Ready)

(* {2 Cascading and overlapping crashes} *)

let test_ip_crash_during_pf_recovery () =
  (* PF dies; before its restart completes, IP dies too. Both recover
     and the flow converges. *)
  let h = make_host () in
  let peer = Host.sink h 0 in
  let received = ref 0 in
  Sink.sink_tcp peer ~port:5001 ~on_bytes:(fun ~at:_ n -> received := !received + n);
  let iperf =
    Apps.Iperf.start (Host.machine h) ~sc:(Host.sc h) ~app:(Host.app h)
      ~dst:(Host.sink_addr h 0) ~port:5001 ~until:(sec 4.0) ()
  in
  Host.at h (sec 1.0) (fun () -> Host.kill_component h Host.C_pf);
  Host.at h (sec 1.05) (fun () -> Host.kill_component h Host.C_ip);
  Host.run h ~until:(sec 6.5);
  Alcotest.(check int) "pf restarted" 1 (Host.restarts_of h Host.C_pf);
  Alcotest.(check int) "ip restarted" 1 (Host.restarts_of h Host.C_ip);
  Alcotest.(check int) "no end-to-end loss" (Apps.Iperf.bytes_sent iperf) !received;
  Alcotest.(check bool) "flow converged" true (!received > 100_000_000)

let test_double_ip_crash () =
  (* The second crash lands while the NIC is still resetting from the
     first. *)
  let h = make_host () in
  let peer = Host.sink h 0 in
  let received = ref 0 in
  Sink.sink_tcp peer ~port:5001 ~on_bytes:(fun ~at:_ n -> received := !received + n);
  let iperf =
    Apps.Iperf.start (Host.machine h) ~sc:(Host.sc h) ~app:(Host.app h)
      ~dst:(Host.sink_addr h 0) ~port:5001 ~until:(sec 5.0) ()
  in
  Host.at h (sec 1.0) (fun () -> Host.kill_component h Host.C_ip);
  Host.at h (sec 1.6) (fun () -> Host.kill_component h Host.C_ip);
  Host.run h ~until:(sec 8.0);
  Alcotest.(check int) "two restarts" 2 (Host.restarts_of h Host.C_ip);
  Alcotest.(check int) "no end-to-end loss" (Apps.Iperf.bytes_sent iperf) !received;
  Alcotest.(check bool) "flow converged after both" true (!received > 50_000_000)

let test_every_component_crashes_in_sequence () =
  let h = make_host () in
  let peer = Host.sink h 0 in
  Sink.serve_tcp_echo peer ~port:22;
  Sink.serve_dns peer ~zone:(fun _ -> Some (Host.sink_addr h 0)) ();
  Apps.Echo_listener.start (Host.sc h) ~app:(Host.app h) ~port:22;
  let dns =
    Apps.Dns_client.start (Host.machine h) ~sc:(Host.sc h) ~app:(Host.app h)
      ~dst:(Host.sink_addr h 0) ~timeout:(sec 0.5) ()
  in
  List.iteri
    (fun i comp -> Host.at h (sec (1.0 +. (0.8 *. float_of_int i))) (fun () ->
         Host.kill_component h comp))
    [ Host.C_pf; Host.C_udp; Host.C_drv 0; Host.C_ip; Host.C_tcp ];
  let reachable = ref false in
  Host.at h (sec 8.0) (fun () ->
      Host.probe_reachable h ~port:22 ~timeout:(sec 1.2) (fun ok -> reachable := ok));
  let answered_before = ref 0 in
  Host.at h (sec 8.0) (fun () -> answered_before := Apps.Dns_client.answered dns);
  Host.run h ~until:(sec 10.0);
  Alcotest.(check bool) "reachable after all five crashed" true !reachable;
  Alcotest.(check bool) "resolver recovered" true
    (Apps.Dns_client.answered dns > !answered_before);
  Alcotest.(check int) "udp socket never reopened" 0 (Apps.Dns_client.socket_reopens dns);
  List.iter
    (fun comp ->
      Alcotest.(check int)
        (Host.component_name comp ^ " restarted once")
        1 (Host.restarts_of h comp))
    [ Host.C_pf; Host.C_udp; Host.C_drv 0; Host.C_ip; Host.C_tcp ]

let test_random_crash_storms_converge () =
  (* Property: any storm of component crashes (no sync-hangs) leaves a
     system that converges to reachable + resolving. *)
  let storm seed =
    let h = make_host ~seed () in
    let peer = Host.sink h 0 in
    Sink.serve_tcp_echo peer ~port:22;
    Sink.serve_dns peer ~zone:(fun _ -> Some (Host.sink_addr h 0)) ();
    Apps.Echo_listener.start (Host.sc h) ~app:(Host.app h) ~port:22;
    let dns =
      Apps.Dns_client.start (Host.machine h) ~sc:(Host.sc h) ~app:(Host.app h)
        ~dst:(Host.sink_addr h 0) ~timeout:(sec 0.5) ()
    in
    let rng = Rng.create seed in
    let components = [| Host.C_tcp; Host.C_udp; Host.C_ip; Host.C_pf; Host.C_drv 0 |] in
    for _ = 1 to 4 do
      let comp = components.(Rng.int rng (Array.length components)) in
      let at = 1.0 +. Rng.float rng 2.0 in
      Host.at h (sec at) (fun () -> Host.kill_component h comp)
    done;
    let reachable = ref false in
    Host.at h (sec 8.5) (fun () ->
        Host.probe_reachable h ~port:22 ~timeout:(sec 1.2) (fun ok -> reachable := ok));
    let answered_at_8 = ref 0 in
    Host.at h (sec 8.5) (fun () -> answered_at_8 := Apps.Dns_client.answered dns);
    Host.run h ~until:(sec 10.5);
    !reachable
    && Apps.Dns_client.answered dns > !answered_at_8
    && Apps.Dns_client.socket_reopens dns = 0
  in
  List.iter
    (fun seed ->
      Alcotest.(check bool)
        (Printf.sprintf "storm %d converges" seed)
        true (storm seed))
    [ 101; 202; 303; 404; 505 ]

let test_driver_coalescing_packet_level () =
  (* Section VI-A: one driver core for all five NICs sustains the same
     rate. *)
  let normal = Newt_core.Experiments.split_peak_event_sim ~duration:0.3 () in
  let coalesced =
    Newt_core.Experiments.split_peak_event_sim ~duration:0.3 ~coalesce_drivers:true ()
  in
  let module E = Newt_core.Experiments in
  Alcotest.(check bool)
    (Printf.sprintf "same throughput (%.2f vs %.2f)" normal.E.goodput_gbps
       coalesced.E.goodput_gbps)
    true
    (abs_float (normal.E.goodput_gbps -. coalesced.E.goodput_gbps)
    < 0.05 *. normal.E.goodput_gbps);
  Alcotest.(check bool)
    (Printf.sprintf "shared driver core has headroom (%.0f%%)"
       (100. *. coalesced.E.drv_util))
    true
    (coalesced.E.drv_util < 0.5)

let test_nic_reset_time_drives_outage () =
  match Newt_core.Experiments.nic_reset_sweep () with
  | [ slow; medium; fast ] ->
      let module E = Newt_core.Experiments in
      Alcotest.(check bool)
        (Printf.sprintf "outage tracks reset time (%.2f > %.2f >= %.2f)"
           slow.E.outage_s medium.E.outage_s fast.E.outage_s)
        true
        (slow.E.outage_s > medium.E.outage_s
        && medium.E.outage_s >= fast.E.outage_s);
      (* Below ~300 ms the TCP retransmission timer, not the hardware,
         becomes the recovery floor — restart-aware hardware helps up
         to that point. *)
      Alcotest.(check bool) "restart-aware hardware: sub-600ms outage" true
        (fast.E.outage_s <= 0.6)
  | _ -> Alcotest.fail "expected three sweep points"

let test_half_close_request_response () =
  (* The classic half-close pattern: send the whole request, shutdown
     the write side, then read the full response until EOF. *)
  let h = make_host () in
  let peer = Host.sink h 0 in
  (* A "batch" server: accumulates until EOF, then answers with the
     byte count and closes. *)
  let total_in = ref 0 in
  let module Tcp = Newt_net.Tcp in
  Tcp.listen (Sink.tcp peer) ~port:9000 ~on_accept:(fun pcb ->
      Tcp.set_handler pcb (fun ev ->
          match ev with
          | Tcp.Readable ->
              total_in := !total_in + Bytes.length (Tcp.recv pcb ~max:1_000_000);
              if Tcp.recv_eof pcb then begin
                ignore (Tcp.send pcb (Bytes.of_string (string_of_int !total_in)));
                Tcp.close pcb
              end
          | _ -> ()));
  let response = Buffer.create 16 in
  let got_eof = ref false in
  Socket_api.tcp_socket (Host.sc h) (Host.app h) (fun conn ->
      Socket_api.connect conn ~dst:(Host.sink_addr h 0) ~port:9000 (fun _ ->
          Socket_api.send conn (Bytes.make 50_000 'r') (fun _ ->
              Socket_api.shutdown_send conn (fun r ->
                  Alcotest.(check bool) "shutdown accepted" true (r = `Ok);
                  let rec read_all () =
                    Socket_api.recv conn ~max:4096 (fun rr ->
                        match rr with
                        | `Data d ->
                            Buffer.add_bytes response d;
                            read_all ()
                        | `Eof -> got_eof := true
                        | `Timeout | `Error _ -> ())
                  in
                  read_all ()))));
  Host.run h ~until:(sec 3.0);
  Alcotest.(check int) "server saw the whole request" 50_000 !total_in;
  Alcotest.(check string) "response arrived after our FIN" "50000"
    (Buffer.contents response);
  Alcotest.(check bool) "clean EOF after the response" true !got_eof

let test_determinism () =
  (* The claim in EXPERIMENTS.md: same seed, bit-identical results. *)
  let run () =
    let t = Newt_core.Experiments.figure_pf_crash ~rules:64 ~crash_at:[ 1.0 ] ~duration:3.0 () in
    (Array.to_list t.Newt_core.Experiments.points,
     t.Newt_core.Experiments.duplicate_segments,
     t.Newt_core.Experiments.sender_retransmits)
  in
  let a = run () and b = run () in
  Alcotest.(check bool) "two identical runs" true (a = b)

let test_inbound_bulk_throughput () =
  (* Full-rate inbound: the peer streams to a host application through
     accept/recv — exercises the RX pool recycling, Rx_done returns and
     the demux path at wire speed. *)
  let h = make_host () in
  let peer = Host.sink h 0 in
  let module Tcp = Newt_net.Tcp in
  (* Host application: accept one connection, drain it. *)
  let drained = ref 0 in
  Socket_api.tcp_socket (Host.sc h) (Host.app h) (fun listener ->
      Socket_api.bind listener ~port:5002 (fun _ ->
          Socket_api.listen listener (fun _ ->
              Socket_api.accept listener (fun r ->
                  match r with
                  | `Conn conn ->
                      let rec drain () =
                        Socket_api.recv conn ~max:1_000_000 (fun rr ->
                            match rr with
                            | `Data d ->
                                drained := !drained + Bytes.length d;
                                drain ()
                            | `Eof | `Timeout | `Error _ -> ())
                      in
                      drain ()
                  | `Error _ -> ()))));
  Host.run h ~until:(sec 0.1);
  (* The peer pushes as fast as it can for one second. *)
  let pcb = Sink.connect peer ~dst:(Host.local_addr h 0) ~dst_port:5002 in
  let sent = ref 0 in
  let pump pcb =
    let continue = ref true in
    while !continue && Newt_sim.Engine.now (Host.engine h) < sec 1.1 do
      let n = Tcp.send pcb (Bytes.make 8192 'z') in
      sent := !sent + n;
      if n = 0 then continue := false
    done
  in
  Tcp.set_handler pcb (fun ev ->
      match ev with Tcp.Connected | Tcp.Writable -> pump pcb | _ -> ());
  Host.run h ~until:(sec 1.3);
  let mbps = float_of_int !drained *. 8.0 /. 1.0 /. 1e6 in
  Alcotest.(check bool)
    (Printf.sprintf "inbound gigabit-class (got %.0f Mbps)" mbps)
    true (mbps > 850.0);
  (* The RX ring keeps 256 posted buffers by design; anything far
     beyond ring + in-flight deliveries would be a leak. *)
  let in_use = Newt_stack.Ip_srv.rx_pool_in_use (Host.ip_srv h) in
  Alcotest.(check bool)
    (Printf.sprintf "rx pool bounded at rate (%d in use)" in_use)
    true (in_use < 600);
  Alcotest.(check int) "no retransmissions inbound" 0
    (Tcp.stats (Sink.tcp peer)).Tcp.retransmits

let test_channel_directory () =
  (* Section IV-C: channels are announced through publish/subscribe;
     restarted consumers republish the same identification, and late
     subscribers see current publications. *)
  let h = make_host () in
  let module Pubsub = Newt_channels.Pubsub in
  let dir = Host.directory h in
  List.iter
    (fun key ->
      Alcotest.(check bool) (key ^ " published") true (Pubsub.lookup dir ~key <> None))
    [ "tcp.to_ip"; "ip.to_tcp"; "udp.to_ip"; "ip.to_pf"; "pf.to_ip";
      "sc.to_tcp"; "ip.to_drv0"; "drv0.to_ip" ];
  (* A subscriber watching TCP's inbound channel sees the
     re-publication after a crash. *)
  let events = ref 0 in
  Pubsub.subscribe dir ~key:"sc.to_tcp" (fun _ -> incr events);
  Alcotest.(check int) "late subscriber got the replay" 1 !events;
  Host.at h (sec 0.5) (fun () -> Host.kill_component h Host.C_tcp);
  Host.run h ~until:(sec 2.0);
  Alcotest.(check int) "republished after the restart" 2 !events;
  (* Crash/restart events are visible in the trace log. *)
  let tcp_events = Newt_sim.Trace.find (Host.trace h) ~subsystem:"tcp" in
  Alcotest.(check bool) "trace recorded CRASH" true
    (List.exists (fun e -> e.Newt_sim.Trace.message = "CRASH") tcp_events);
  Alcotest.(check bool) "trace recorded RESTART" true
    (List.exists (fun e -> e.Newt_sim.Trace.message = "RESTART") tcp_events)

module Churn = Newt_core.Churn
module Continuous = Newt_verify.Continuous

(* The churn scenarios at test scale: smaller topology, shorter runs,
   same mechanics as [newtos_sim churn]. *)
let churn_run ?verify scenario =
  Churn.run ~scenario ~rate:3000.0 ~duration:0.3 ~shards:4 ~ip_replicas:2
    ~pf_shards:2 ~bulk_flows:2 ~workers:4 ~flood_rate:12_000.0
    ~conntrack_total:1024 ?verify ()

let test_churn_flood_keeps_established_flows () =
  let base = churn_run Churn.Baseline in
  let flood = churn_run Churn.Syn_flood in
  Alcotest.(check bool) "flood filled the table and forced eviction" true
    (flood.Churn.evicted_half_open > 0);
  Alcotest.(check int) "no established flow was evicted for flood state" 0
    flood.Churn.evicted_established;
  Alcotest.(check bool)
    (Printf.sprintf "completions under flood near baseline (%d vs %d)"
       flood.Churn.completed base.Churn.completed)
    true
    (float_of_int flood.Churn.completed
    >= 0.9 *. float_of_int base.Churn.completed);
  Alcotest.(check bool)
    (Printf.sprintf "bulk goodput under flood near baseline (%.2f vs %.2f)"
       flood.Churn.bulk_goodput_gbps base.Churn.bulk_goodput_gbps)
    true
    (flood.Churn.bulk_goodput_gbps >= 0.7 *. base.Churn.bulk_goodput_gbps)

let test_churn_crash_recovers_under_verification () =
  let v = Continuous.create () in
  let r = churn_run ~verify:v Churn.Crash_during_churn in
  Alcotest.(check int) "exactly one shard restart" 1 r.Churn.shard_restarts;
  Alcotest.(check bool) "the static checker re-ran mid-churn" true
    ((Continuous.totals v).Continuous.re_checks >= 1);
  Alcotest.(check bool) "no violations, no leaks" true (Continuous.ok v);
  Alcotest.(check bool)
    (Printf.sprintf "churn kept completing through the crash (%d of %d)"
       r.Churn.completed r.Churn.started)
    true
    (float_of_int r.Churn.completed >= 0.8 *. float_of_int r.Churn.started);
  Alcotest.(check int) "affinity held throughout" 0 r.Churn.steering_violations

let test_churn_listen_pressure_stays_bounded () =
  let r =
    Churn.run ~scenario:Churn.Listen_pressure ~rate:1500.0 ~duration:0.3
      ~backlog:4 ()
  in
  Alcotest.(check bool) "the backlog cap was hit" true
    (r.Churn.listen_overflows > 0);
  Alcotest.(check int) "every overflow RST its client"
    r.Churn.listen_overflows r.Churn.client_resets;
  Alcotest.(check bool)
    (Printf.sprintf "every arrival accepted or refused (%d + %d vs %d)"
       r.Churn.accepted r.Churn.client_resets r.Churn.started)
    true
    (abs (r.Churn.started - (r.Churn.accepted + r.Churn.client_resets)) <= 4)

let test_multi_nic_host () =
  let config = { Host.default_config with Host.nics = 3 } in
  let h = Host.create ~config () in
  (* Streams to peers on different links concurrently. *)
  let totals = Array.make 3 0 in
  for i = 0 to 2 do
    let peer = Host.sink h i in
    Sink.sink_tcp peer ~port:5001 ~on_bytes:(fun ~at:_ n -> totals.(i) <- totals.(i) + n)
  done;
  let iperfs =
    List.init 3 (fun i ->
        Apps.Iperf.start (Host.machine h) ~sc:(Host.sc h) ~app:(Host.app h)
          ~dst:(Host.sink_addr h i) ~port:5001 ~until:(sec 0.5) ())
  in
  Host.run h ~until:(sec 0.8);
  List.iteri
    (fun i iperf ->
      Alcotest.(check int)
        (Printf.sprintf "link %d lossless" i)
        (Apps.Iperf.bytes_sent iperf) totals.(i);
      Alcotest.(check bool)
        (Printf.sprintf "link %d carried real traffic" i)
        true (totals.(i) > 10_000_000))
    iperfs

let suite =
  [
    ("bulk TCP reaches gigabit wire speed", `Quick, test_bulk_throughput_near_wire);
    ("inbound accept + echo through the stack", `Quick, test_inbound_accept_and_echo);
    ("udp request/response via syscalls", `Quick, test_udp_roundtrip_via_syscalls);
    ("recv timeout (SO_RCVTIMEO)", `Quick, test_recv_timeout);
    ( "tcp crash: connections break, listeners recover",
      `Quick,
      test_tcp_crash_breaks_connections_but_listeners_recover );
    ("udp crash is transparent", `Quick, test_udp_crash_transparent);
    ( "ip crash: duplicates not losses, routes restored",
      `Quick,
      test_ip_crash_recovers_with_duplicates_not_losses );
    ("pf crash loses no packets (1024 rules)", `Quick, test_pf_crash_loses_no_packets);
    ("pf rebuilds conntrack by querying tcp", `Quick, test_pf_restores_conntrack_from_tcp);
    ("driver crash recovers losslessly", `Quick, test_driver_crash_recovers);
    ( "syscall server re-issues ops across restarts",
      `Quick,
      test_sc_resubmits_blocked_ops_across_restarts );
    ("sync-path hang freezes the system", `Quick, test_sync_hang_freezes_everything);
    ("live update of UDP under TCP traffic", `Quick, test_live_update_udp_under_tcp_traffic);
    ("broken recovery needs manual restart", `Quick, test_broken_recovery_needs_manual_restart);
    ("misconfigured device = slowdown, no crash", `Quick, test_misconfigured_device_slowdown);
    ("all components persist state to storage", `Quick, test_storage_holds_all_component_state);
    ("storage crash forces re-persisting", `Quick, test_storage_crash_forces_repersist);
    ( "event sim cross-validates the capacity model",
      `Slow,
      test_event_sim_cross_validates_capacity_model );
    ( "single server beats split emergently",
      `Slow,
      test_single_server_beats_split_emergently );
    ("Minix baseline is emergently slow", `Quick, test_minix_baseline_emergent);
    ("MWAIT halt/poll latency trade-off", `Quick, test_mwait_polling_latency_tradeoff);
    ("udp sendto/recvfrom", `Quick, test_udp_sendto_recvfrom);
    ("select wakes on the ready socket", `Quick, test_select_wakes_on_ready_socket);
    ("select timeout", `Quick, test_select_timeout);
    ( "select survives a transport crash",
      `Quick,
      test_select_survives_transport_crash );
    ("multi-NIC host drives all links", `Quick, test_multi_nic_host);
    ( "listen backlog refuses overflow and survives restart",
      `Quick,
      test_listen_backlog_refuses_overflow );
    ( "churn: flood cannot evict established flows",
      `Quick,
      test_churn_flood_keeps_established_flows );
    ( "churn: shard crash recovers under continuous verification",
      `Quick,
      test_churn_crash_recovers_under_verification );
    ( "churn: listen pressure stays bounded",
      `Quick,
      test_churn_listen_pressure_stays_bounded );
    ("IP crash during PF recovery", `Quick, test_ip_crash_during_pf_recovery);
    ("double IP crash mid-reset", `Quick, test_double_ip_crash);
    ( "all five components crash in sequence",
      `Quick,
      test_every_component_crashes_in_sequence );
    ("random crash storms converge", `Slow, test_random_crash_storms_converge);
    ( "driver coalescing at packet level",
      `Slow,
      test_driver_coalescing_packet_level );
    ("NIC reset time drives the outage", `Slow, test_nic_reset_time_drives_outage);
    ("half-close request/response", `Quick, test_half_close_request_response);
    ("inbound bulk at wire speed", `Quick, test_inbound_bulk_throughput);
    ("same seed, bit-identical runs", `Quick, test_determinism);
    ("channel directory + trace log", `Quick, test_channel_directory);
  ]
