let () =
  Alcotest.run "newtos"
    [
      ("sim", Test_sim.suite);
      ("hw", Test_hw.suite);
      ("channels", Test_channels.suite);
      ("net", Test_net.suite);
      ("tcp", Test_tcp.suite);
      ("nic", Test_nic.suite);
      ("pf", Test_pf.suite);
      ("stack", Test_stack.suite);
      ("reliability", Test_reliability.suite);
      ("scale", Test_scale.suite);
      ("verify", Test_verify.suite);
      ("runtime", Test_runtime.suite);
      ("race", Test_race.suite);
      ("integration", Test_integration.suite);
    ]
