(* Tests for the NIC substrate: descriptor rings, the link model, the
   offload engines (checksum finalization, TSO splitting — property
   tested against the real decoders), and the e1000 device model
   including its recovery-relevant reset semantics. *)

module Engine = Newt_sim.Engine
module Time = Newt_sim.Time
module Ring = Newt_nic.Ring
module Link = Newt_nic.Link
module Offload = Newt_nic.Offload
module E1000 = Newt_nic.E1000
module Pool = Newt_channels.Pool
module Registry = Newt_channels.Registry
module Rich_ptr = Newt_channels.Rich_ptr
module Addr = Newt_net.Addr
module Ethernet = Newt_net.Ethernet
module Ipv4 = Newt_net.Ipv4
module Tcp_wire = Newt_net.Tcp_wire
module Udp = Newt_net.Udp

let ip = Addr.Ipv4.v
let qtest name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:100 ~name gen f)

(* {2 Ring} *)

let test_ring_lifecycle () =
  let r = Ring.create ~size:4 ~dummy:(-1) in
  Alcotest.(check int) "all free" 4 (Ring.free_slots r);
  Alcotest.(check bool) "post 1" true (Ring.post r 10);
  Alcotest.(check bool) "post 2" true (Ring.post r 20);
  Alcotest.(check int) "pending" 2 (Ring.pending r);
  Alcotest.(check (option int)) "device takes oldest" (Some 10) (Ring.device_take r);
  Ring.device_complete r;
  Alcotest.(check int) "one completion" 1 (Ring.completed_unreaped r);
  Alcotest.(check (option int)) "reap returns it" (Some 10) (Ring.reap r);
  Alcotest.(check int) "slot freed" 3 (Ring.free_slots r)

let test_ring_full () =
  let r = Ring.create ~size:2 ~dummy:0 in
  Alcotest.(check bool) "1" true (Ring.post r 1);
  Alcotest.(check bool) "2" true (Ring.post r 2);
  Alcotest.(check bool) "full" false (Ring.post r 3);
  ignore (Ring.device_take r);
  (* Taking does not free the slot; only reaping does. *)
  Alcotest.(check bool) "still full" false (Ring.post r 3);
  Ring.device_complete r;
  ignore (Ring.reap r);
  Alcotest.(check bool) "room after reap" true (Ring.post r 3)

let test_ring_clear_returns_leftovers () =
  let r = Ring.create ~size:8 ~dummy:0 in
  List.iter (fun v -> ignore (Ring.post r v)) [ 1; 2; 3 ];
  ignore (Ring.device_take r);
  let leftovers = Ring.clear r in
  Alcotest.(check (list int)) "all unreaped descriptors returned" [ 1; 2; 3 ] leftovers;
  Alcotest.(check int) "empty after clear" 8 (Ring.free_slots r)

let test_ring_wraparound () =
  let r = Ring.create ~size:2 ~dummy:0 in
  for i = 1 to 50 do
    Alcotest.(check bool) "post" true (Ring.post r i);
    Alcotest.(check (option int)) "take" (Some i) (Ring.device_take r);
    Ring.device_complete r;
    Alcotest.(check (option int)) "reap" (Some i) (Ring.reap r)
  done

let test_ring_reap_after_complete_across_wrap () =
  (* Batched take/complete/reap rounds on a tiny ring: completions and
     reaps repeatedly cross the index wrap, and reap order must stay
     the post order throughout. *)
  let r = Ring.create ~size:4 ~dummy:0 in
  let next = ref 0 in
  let posted = Queue.create () in
  for _round = 1 to 10 do
    while Ring.post r !next do
      Queue.push !next posted;
      incr next
    done;
    let rec take_all () =
      match Ring.device_take r with
      | Some _ ->
          Ring.device_complete r;
          take_all ()
      | None -> ()
    in
    take_all ();
    let rec reap_all () =
      match Ring.reap r with
      | Some v ->
          Alcotest.(check int) "FIFO across the wrap" (Queue.pop posted) v;
          reap_all ()
      | None -> ()
    in
    reap_all ()
  done;
  Alcotest.(check int) "everything reaped" 0 (Queue.length posted);
  Alcotest.(check int) "ring empty again" 4 (Ring.free_slots r)

(* {2 RSS} *)

let test_rss_deterministic_and_symmetric () =
  let rss = Newt_nic.Rss.create ~queues:4 () in
  let rss' = Newt_nic.Rss.create ~queues:4 () in
  for sport = 49152 to 49152 + 127 do
    let src = ip 10 0 0 1 and dst = ip 10 0 0 2 in
    let q = Newt_nic.Rss.queue_of rss ~src ~sport ~dst ~dport:80 in
    Alcotest.(check int) "deterministic per seed" q
      (Newt_nic.Rss.queue_of rss' ~src ~sport ~dst ~dport:80);
    Alcotest.(check int) "symmetric" q
      (Newt_nic.Rss.queue_of rss ~src:dst ~sport:80 ~dst:src ~dport:sport);
    Alcotest.(check bool) "in range" true (q >= 0 && q < 4)
  done

let test_rss_indirection_table () =
  let rss = Newt_nic.Rss.create ~queues:4 ~buckets:8 () in
  Alcotest.(check int) "bucket count" 8 (Array.length (Newt_nic.Rss.table rss));
  (* Point every bucket at queue 2: all flows must follow. *)
  Newt_nic.Rss.set_table rss (Array.make 8 2);
  for sport = 49152 to 49152 + 31 do
    Alcotest.(check int) "table redirects all flows" 2
      (Newt_nic.Rss.queue_of rss ~src:(ip 10 0 0 1) ~sport ~dst:(ip 10 0 0 2)
         ~dport:80)
  done;
  let rejects f =
    match f () with
    | exception Invalid_argument _ -> true
    | () -> false
  in
  Alcotest.(check bool) "wrong length rejected" true
    (rejects (fun () -> Newt_nic.Rss.set_table rss [| 0; 1 |]));
  Alcotest.(check bool) "out-of-range queue rejected" true
    (rejects (fun () -> Newt_nic.Rss.set_table rss (Array.make 8 7)));
  Alcotest.(check bool) "set_bucket validates too" true
    (rejects (fun () -> Newt_nic.Rss.set_bucket rss ~bucket:0 ~queue:9))

(* {2 Link} *)

let test_link_delivers_in_order () =
  let e = Engine.create () in
  let l = Link.create e () in
  let got = ref [] in
  Link.attach l Link.Right (fun frame -> got := Bytes.to_string frame :: !got);
  Alcotest.(check bool) "tx a" true (Link.transmit l ~from:Link.Left (Bytes.of_string "aa"));
  Alcotest.(check bool) "tx b" true (Link.transmit l ~from:Link.Left (Bytes.of_string "bb"));
  Engine.run e;
  Alcotest.(check (list string)) "in order" [ "aa"; "bb" ] (List.rev !got)

let test_link_serialization_time () =
  let e = Engine.create () in
  (* 1 Gbps: 1500 bytes = 12 us on the wire. *)
  let l = Link.create e ~propagation:0 () in
  let arrived = ref 0 in
  Link.attach l Link.Right (fun _ -> arrived := Engine.now e);
  ignore (Link.transmit l ~from:Link.Left (Bytes.create 1500));
  Engine.run e;
  let expected = Time.of_micros 12.0 in
  Alcotest.(check bool)
    (Printf.sprintf "~12us serialization (got %d, expected %d)" !arrived expected)
    true
    (abs (!arrived - expected) < 100)

let test_link_down_drops () =
  let e = Engine.create () in
  let l = Link.create e () in
  let got = ref 0 in
  Link.attach l Link.Right (fun _ -> incr got);
  Link.set_up l false;
  Alcotest.(check bool) "refused" false (Link.transmit l ~from:Link.Left (Bytes.create 64));
  Link.set_up l true;
  Alcotest.(check bool) "accepted" true (Link.transmit l ~from:Link.Left (Bytes.create 64));
  Engine.run e;
  Alcotest.(check int) "one delivered" 1 !got;
  Alcotest.(check int) "one dropped" 1 (Link.dropped l)

let test_link_down_flushes_in_flight () =
  let e = Engine.create () in
  let l = Link.create e () in
  let got = ref 0 in
  Link.attach l Link.Right (fun _ -> incr got);
  ignore (Link.transmit l ~from:Link.Left (Bytes.create 1500));
  (* Take the link down before the frame lands. *)
  ignore (Engine.schedule e 100 (fun () -> Link.set_up l false));
  Engine.run e;
  Alcotest.(check int) "in-flight frame lost" 0 !got

let test_link_queue_overflow () =
  let e = Engine.create () in
  let l = Link.create e ~queue_frames:2 () in
  Link.attach l Link.Right (fun _ -> ());
  Alcotest.(check bool) "1" true (Link.transmit l ~from:Link.Left (Bytes.create 1500));
  Alcotest.(check bool) "2" true (Link.transmit l ~from:Link.Left (Bytes.create 1500));
  Alcotest.(check bool) "3 overflows" false (Link.transmit l ~from:Link.Left (Bytes.create 1500));
  Engine.run e;
  Alcotest.(check int) "both directions counted" 1 (Link.dropped l)

let test_link_full_duplex () =
  let e = Engine.create () in
  let l = Link.create e () in
  let left = ref 0 and right = ref 0 in
  Link.attach l Link.Left (fun _ -> incr left);
  Link.attach l Link.Right (fun _ -> incr right);
  ignore (Link.transmit l ~from:Link.Left (Bytes.create 100));
  ignore (Link.transmit l ~from:Link.Right (Bytes.create 100));
  Engine.run e;
  Alcotest.(check int) "right got left's frame" 1 !right;
  Alcotest.(check int) "left got right's frame" 1 !left

(* {2 Offload engines} *)

let make_tcp_frame ?(payload_len = 100) ?(partial = true) () =
  let src = ip 10 0 0 1 and dst = ip 10 0 0 2 in
  let hdr =
    {
      Tcp_wire.src_port = 5001;
      dst_port = 80;
      seq = 1_000_000;
      ack = 777;
      flags = { Tcp_wire.flag_ack with Tcp_wire.psh = true };
      window = 8192;
      mss = None;
      wscale = None;
    }
  in
  let payload = Bytes.init payload_len (fun i -> Char.chr (i land 0xff)) in
  let seg = Tcp_wire.encode ~src ~dst ~partial_csum:partial hdr ~payload in
  let pkt =
    Ipv4.packet
      { Ipv4.src; dst; protocol = Ipv4.Tcp; ttl = 64; ident = 42; total_len = 0 }
      ~payload:seg
  in
  let frame =
    Ethernet.frame
      { Ethernet.dst = Addr.Mac.of_index 2; src = Addr.Mac.of_index 1; ethertype = Ethernet.Ipv4 }
      ~payload:pkt
  in
  (frame, src, dst, hdr, payload)

let test_offload_finalizes_tcp_csum () =
  let frame, src, dst, _, payload = make_tcp_frame () in
  Alcotest.(check bool) "finalized" true (Offload.finalize_l4_checksum frame);
  (* Validate with the real decoder, like the receiving host will. *)
  match Ethernet.payload frame with
  | Some pkt -> (
      match Ipv4.payload pkt with
      | Some (_, l4) -> (
          match Tcp_wire.decode ~src ~dst l4 with
          | Some (_, p) ->
              Alcotest.(check bytes) "payload intact after offload" payload p
          | None -> Alcotest.fail "checksum invalid after finalize")
      | None -> Alcotest.fail "bad ip")
  | None -> Alcotest.fail "bad eth"

let test_offload_rejects_non_ip () =
  let frame = Bytes.create 64 in
  Alcotest.(check bool) "arp-ish frame not offloadable" false
    (Offload.finalize_l4_checksum frame)

let test_tso_split_validates =
  qtest "TSO split yields decodable, in-order segments"
    QCheck2.Gen.(tup2 (int_range 1 8000) (int_range 536 1460))
    (fun (payload_len, mss) ->
      let frame, src, dst, hdr, payload = make_tcp_frame ~payload_len () in
      let pieces = Offload.tso_split frame ~mss in
      (* Reassemble through real decoders. *)
      let buf = Buffer.create payload_len in
      let expected_pieces = (payload_len + mss - 1) / mss in
      let ok_count =
        List.for_all
          (fun piece ->
            match Ethernet.payload piece with
            | None -> false
            | Some pkt -> (
                match Ipv4.payload pkt with
                | None -> false
                | Some (ih, l4) -> (
                    if ih.Ipv4.protocol <> Ipv4.Tcp then false
                    else
                      match Tcp_wire.decode ~src ~dst l4 with
                      | None -> false
                      | Some (h, p) ->
                          (* Sequence numbers must advance contiguously. *)
                          let expect_seq =
                            Newt_net.Seq32.add hdr.Tcp_wire.seq (Buffer.length buf)
                          in
                          Buffer.add_bytes buf p;
                          h.Tcp_wire.seq = expect_seq)))
          pieces
      in
      ok_count
      && List.length pieces = expected_pieces
      && Bytes.equal (Buffer.to_bytes buf) payload)

let test_tso_flags_only_on_last () =
  let frame, src, dst, _, _ = make_tcp_frame ~payload_len:4000 () in
  let pieces = Offload.tso_split frame ~mss:1460 in
  let flags =
    List.map
      (fun piece ->
        match Ethernet.payload piece with
        | Some pkt -> (
            match Ipv4.payload pkt with
            | Some (_, l4) -> (
                match Tcp_wire.decode ~src ~dst l4 with
                | Some (h, _) -> h.Tcp_wire.flags.Tcp_wire.psh
                | None -> Alcotest.fail "undecodable piece")
            | None -> Alcotest.fail "bad ip")
        | None -> Alcotest.fail "bad eth")
      pieces
  in
  Alcotest.(check (list bool)) "PSH only on the last segment" [ false; false; true ] flags

let test_tso_small_frame_passthrough () =
  let frame, _, _, _, _ = make_tcp_frame ~payload_len:100 () in
  let pieces = Offload.tso_split frame ~mss:1460 in
  Alcotest.(check int) "single piece" 1 (List.length pieces)

let test_offload_udp_csum () =
  let src = ip 10 0 0 1 and dst = ip 10 0 0 2 in
  let dg =
    Udp.encode_partial_csum ~src ~dst { Udp.src_port = 53; dst_port = 9999 }
      ~payload:(Bytes.of_string "answer")
  in
  let pkt =
    Ipv4.packet
      { Ipv4.src; dst; protocol = Ipv4.Udp; ttl = 64; ident = 1; total_len = 0 }
      ~payload:dg
  in
  let frame =
    Ethernet.frame
      { Ethernet.dst = Addr.Mac.of_index 2; src = Addr.Mac.of_index 1; ethertype = Ethernet.Ipv4 }
      ~payload:pkt
  in
  Alcotest.(check bool) "finalized" true (Offload.finalize_l4_checksum frame);
  match Ethernet.payload frame with
  | Some pkt -> (
      match Ipv4.payload pkt with
      | Some (_, l4) ->
          Alcotest.(check bool) "udp decodes" true (Udp.decode ~src ~dst l4 <> None)
      | None -> Alcotest.fail "bad ip")
  | None -> Alcotest.fail "bad eth"

(* {2 E1000 device} *)

type dev_world = {
  engine : Engine.t;
  registry : Registry.t;
  pool : Pool.t;
  dev : E1000.t;
  link : Link.t;
  received_frames : Bytes.t list ref;
}

let make_dev_world () =
  let engine = Engine.create () in
  let registry = Registry.create () in
  let pool = Pool.create ~id:(Pool.fresh_id ()) ~slots:64 ~slot_size:2048 in
  Registry.register registry pool;
  let link = Link.create engine () in
  let dev =
    E1000.create engine ~registry ~link ~side:Link.Left ~mac:(Addr.Mac.of_index 1) ()
  in
  let received_frames = ref [] in
  Link.attach link Link.Right (fun f -> received_frames := f :: !received_frames);
  { engine; registry; pool; dev; link; received_frames }

let post_frame w bytes =
  let ptr = Pool.alloc w.pool ~len:(Bytes.length bytes) in
  Pool.write w.pool ptr ~src:bytes ~src_off:0;
  let ok =
    E1000.post_tx w.dev
      { E1000.chain = [ ptr ]; csum_offload = false; tso = false; tso_mss = 1460; tx_cookie = 7 }
  in
  Alcotest.(check bool) "posted" true ok;
  E1000.doorbell_tx w.dev

let test_e1000_tx_path () =
  let w = make_dev_world () in
  post_frame w (Bytes.of_string "a frame on the wire");
  Engine.run w.engine;
  Alcotest.(check int) "transmitted" 1 (E1000.tx_packets w.dev);
  (match !(w.received_frames) with
  | [ f ] -> Alcotest.(check string) "content" "a frame on the wire" (Bytes.to_string f)
  | l -> Alcotest.fail (Printf.sprintf "expected 1 frame, got %d" (List.length l)));
  (* Completion is reported so the owner can free the buffers. *)
  match E1000.reap_tx w.dev with
  | Some d -> Alcotest.(check int) "cookie returned" 7 d.E1000.tx_cookie
  | None -> Alcotest.fail "no tx completion"

let test_e1000_tx_irq () =
  let w = make_dev_world () in
  let irqs = ref [] in
  E1000.set_irq_handler w.dev (fun r -> irqs := r :: !irqs);
  post_frame w (Bytes.create 64);
  Engine.run w.engine;
  Alcotest.(check bool) "tx interrupt raised" true (List.mem E1000.Tx_done !irqs)

let test_e1000_rx_path () =
  let w = make_dev_world () in
  let irqs = ref 0 in
  E1000.set_irq_handler w.dev (fun r -> if r = E1000.Rx_done then incr irqs);
  E1000.set_rx_writer w.dev (fun ptr frame ->
      Pool.write w.pool { ptr with Rich_ptr.len = Bytes.length frame } ~src:frame ~src_off:0);
  let buf = Pool.alloc w.pool ~len:2048 in
  Alcotest.(check bool) "rx posted" true (E1000.post_rx w.dev { E1000.buf; rx_cookie = 3 });
  ignore (Link.transmit w.link ~from:Link.Right (Bytes.of_string "incoming!"));
  Engine.run w.engine;
  Alcotest.(check int) "rx interrupt" 1 !irqs;
  match E1000.reap_rx w.dev with
  | Some completion ->
      Alcotest.(check int) "length" 9 completion.E1000.len;
      let data =
        Pool.read w.pool { completion.E1000.rx_buf with Rich_ptr.len = completion.E1000.len }
      in
      Alcotest.(check string) "dma'd content" "incoming!" (Bytes.to_string data)
  | None -> Alcotest.fail "no rx completion"

let test_e1000_rx_no_buffer_drops () =
  let w = make_dev_world () in
  ignore (Link.transmit w.link ~from:Link.Right (Bytes.create 64));
  Engine.run w.engine;
  Alcotest.(check int) "dropped for lack of descriptors" 1 (E1000.rx_no_buffer w.dev)

let test_e1000_reset_bounces_link () =
  let w = make_dev_world () in
  let link_irq = ref false in
  E1000.set_irq_handler w.dev (fun r -> if r = E1000.Link_change then link_irq := true);
  E1000.reset w.dev;
  Alcotest.(check bool) "link down during reset" false (E1000.link_up w.dev);
  Engine.run w.engine;
  Alcotest.(check bool) "link back up" true (E1000.link_up w.dev);
  Alcotest.(check bool) "link-change interrupt" true !link_irq

let test_e1000_unsafe_stops_processing () =
  let w = make_dev_world () in
  E1000.mark_unsafe w.dev;
  post_frame w (Bytes.create 64);
  Engine.run w.engine;
  Alcotest.(check int) "nothing transmitted while unsafe" 0 (E1000.tx_packets w.dev);
  (* Reset recovers. *)
  E1000.reset w.dev;
  Engine.run w.engine;
  Alcotest.(check bool) "safe after reset" false (E1000.is_unsafe w.dev)

let test_e1000_misconfigured_drops_rx () =
  let w = make_dev_world () in
  E1000.set_rx_writer w.dev (fun ptr frame ->
      Pool.write w.pool { ptr with Rich_ptr.len = Bytes.length frame } ~src:frame ~src_off:0);
  let buf = Pool.alloc w.pool ~len:2048 in
  ignore (E1000.post_rx w.dev { E1000.buf; rx_cookie = 0 });
  E1000.misconfigure w.dev;
  ignore (Link.transmit w.link ~from:Link.Right (Bytes.create 64));
  Engine.run w.engine;
  Alcotest.(check int) "misconfigured device receives nothing" 0 (E1000.rx_packets w.dev)

let test_e1000_stale_chain_dropped () =
  let w = make_dev_world () in
  let ptr = Pool.alloc w.pool ~len:64 in
  Pool.write w.pool ptr ~src:(Bytes.create 64) ~src_off:0;
  ignore
    (E1000.post_tx w.dev
       { E1000.chain = [ ptr ]; csum_offload = false; tso = false; tso_mss = 0; tx_cookie = 1 });
  (* The owner crashes and its pool is freed before the DMA happens. *)
  Pool.free w.pool ptr;
  E1000.doorbell_tx w.dev;
  Engine.run w.engine;
  Alcotest.(check int) "frame dropped, not garbage-transmitted" 0 (E1000.tx_packets w.dev);
  Alcotest.(check bool) "descriptor still completes" true (E1000.reap_tx w.dev <> None)

let test_e1000_tso_on_the_wire () =
  let w = make_dev_world () in
  (* An oversized TSO frame needs a jumbo pool slot. *)
  let jumbo = Pool.create ~id:(Pool.fresh_id ()) ~slots:4 ~slot_size:65536 in
  Registry.register w.registry jumbo;
  let frame, src, dst, _, payload = make_tcp_frame ~payload_len:4000 () in
  let ptr = Pool.alloc jumbo ~len:(Bytes.length frame) in
  Pool.write jumbo ptr ~src:frame ~src_off:0;
  ignore
    (E1000.post_tx w.dev
       { E1000.chain = [ ptr ]; csum_offload = true; tso = true; tso_mss = 1460; tx_cookie = 1 });
  E1000.doorbell_tx w.dev;
  Engine.run w.engine;
  Alcotest.(check int) "split into 3 wire frames" 3 (List.length !(w.received_frames));
  (* Each piece decodes and the payload reassembles. *)
  let buf = Buffer.create 4000 in
  List.iter
    (fun piece ->
      match Ethernet.payload piece with
      | Some pkt -> (
          match Ipv4.payload pkt with
          | Some (_, l4) -> (
              match Tcp_wire.decode ~src ~dst l4 with
              | Some (_, p) -> Buffer.add_bytes buf p
              | None -> Alcotest.fail "bad tcp csum on wire")
          | None -> Alcotest.fail "bad ip")
      | None -> Alcotest.fail "bad eth")
    (List.rev !(w.received_frames));
  Alcotest.(check bytes) "payload reassembles" payload (Buffer.to_bytes buf)

(* {2 Pcap} *)

let test_pcap_capture_format () =
  let e = Engine.create () in
  let l = Link.create e () in
  Link.attach l Link.Right (fun _ -> ());
  let cap = Newt_nic.Pcap.create () in
  Newt_nic.Pcap.attach cap l;
  ignore (Link.transmit l ~from:Link.Left (Bytes.make 60 'a'));
  ignore (Link.transmit l ~from:Link.Left (Bytes.make 100 'b'));
  Engine.run e;
  Alcotest.(check int) "two frames captured" 2 (Newt_nic.Pcap.frames cap);
  let file = Newt_nic.Pcap.to_bytes cap in
  (* Global header: LE magic a1b2c3d4, version 2.4, linktype 1. *)
  let le32 off =
    Char.code (Bytes.get file off)
    lor (Char.code (Bytes.get file (off + 1)) lsl 8)
    lor (Char.code (Bytes.get file (off + 2)) lsl 16)
    lor (Char.code (Bytes.get file (off + 3)) lsl 24)
  in
  Alcotest.(check int) "magic" 0xa1b2c3d4 (le32 0);
  Alcotest.(check int) "linktype ethernet" 1 (le32 20);
  Alcotest.(check int) "total size" (24 + (16 + 60) + (16 + 100)) (Bytes.length file);
  (* First record's included length. *)
  Alcotest.(check int) "first record length" 60 (le32 (24 + 8))

let test_pcap_timestamps_monotonic () =
  let e = Engine.create () in
  let l = Link.create e () in
  Link.attach l Link.Right (fun _ -> ());
  let cap = Newt_nic.Pcap.create () in
  Newt_nic.Pcap.attach cap l;
  for _ = 1 to 5 do
    ignore (Link.transmit l ~from:Link.Left (Bytes.make 1500 'x'))
  done;
  Engine.run e;
  let file = Newt_nic.Pcap.to_bytes cap in
  let le32 off =
    Char.code (Bytes.get file off)
    lor (Char.code (Bytes.get file (off + 1)) lsl 8)
    lor (Char.code (Bytes.get file (off + 2)) lsl 16)
    lor (Char.code (Bytes.get file (off + 3)) lsl 24)
  in
  (* Successive records: usecs strictly increase (1500B = 12us apart). *)
  let ts i =
    let off = 24 + (i * (16 + 1500)) in
    (le32 off * 1_000_000) + le32 (off + 4)
  in
  for i = 0 to 3 do
    Alcotest.(check bool) "monotonic timestamps" true (ts (i + 1) > ts i)
  done

let suite =
  [
    ("ring descriptor lifecycle", `Quick, test_ring_lifecycle);
    ("ring full/reap interplay", `Quick, test_ring_full);
    ("ring clear returns leftovers (reset)", `Quick, test_ring_clear_returns_leftovers);
    ("ring index wraparound", `Quick, test_ring_wraparound);
    ( "ring batched reap-after-complete across wrap",
      `Quick,
      test_ring_reap_after_complete_across_wrap );
    ("rss deterministic and symmetric", `Quick, test_rss_deterministic_and_symmetric);
    ("rss indirection table programming", `Quick, test_rss_indirection_table);
    ("link delivers frames in order", `Quick, test_link_delivers_in_order);
    ("link 1Gbps serialization time", `Quick, test_link_serialization_time);
    ("link down drops frames", `Quick, test_link_down_drops);
    ("link down flushes in-flight frames", `Quick, test_link_down_flushes_in_flight);
    ("link queue overflow", `Quick, test_link_queue_overflow);
    ("link is full duplex", `Quick, test_link_full_duplex);
    ("offload finalizes tcp checksum", `Quick, test_offload_finalizes_tcp_csum);
    ("offload rejects non-ip frames", `Quick, test_offload_rejects_non_ip);
    test_tso_split_validates;
    ("tso keeps PSH only on last piece", `Quick, test_tso_flags_only_on_last);
    ("tso passthrough for small frames", `Quick, test_tso_small_frame_passthrough);
    ("offload finalizes udp checksum", `Quick, test_offload_udp_csum);
    ("e1000 tx path end to end", `Quick, test_e1000_tx_path);
    ("e1000 raises tx interrupts", `Quick, test_e1000_tx_irq);
    ("e1000 rx path end to end", `Quick, test_e1000_rx_path);
    ("e1000 drops rx without buffers", `Quick, test_e1000_rx_no_buffer_drops);
    ("e1000 reset bounces the link", `Quick, test_e1000_reset_bounces_link);
    ("e1000 unsafe after owner crash", `Quick, test_e1000_unsafe_stops_processing);
    ("e1000 misconfigured stops receiving", `Quick, test_e1000_misconfigured_drops_rx);
    ("e1000 drops frames with dead buffers", `Quick, test_e1000_stale_chain_dropped);
    ("e1000 TSO produces valid wire frames", `Quick, test_e1000_tso_on_the_wire);
    ("pcap capture file format", `Quick, test_pcap_capture_format);
    ("pcap timestamps monotonic", `Quick, test_pcap_timestamps_monotonic);
  ]
