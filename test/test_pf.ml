(* Tests for the packet filter: rule matching, PF evaluation semantics
   (last match wins, quick, keep state), connection tracking, packet
   classification, and the crash-recovery interfaces. *)

module Rule = Newt_pf.Rule
module Conntrack = Newt_pf.Conntrack
module Pf_engine = Newt_pf.Pf_engine
module Addr = Newt_net.Addr
module Ipv4 = Newt_net.Ipv4
module Tcp_wire = Newt_net.Tcp_wire
module Rng = Newt_sim.Rng

let ip = Addr.Ipv4.v

let pkt ?(dir = `Out) ?(proto = `Tcp) ?(src = ip 10 0 0 1) ?(dst = ip 10 0 0 2)
    ?(sport = 40000) ?(dport = 80) () =
  { Rule.dir; proto; src_ip = src; dst_ip = dst; src_port = sport; dst_port = dport }

let test_rule_matching () =
  let r =
    {
      Rule.pass_all with
      Rule.proto = Rule.Match_tcp;
      direction = Rule.Dir_out;
      dst = Rule.Net { prefix = ip 10 0 0 0; bits = 8 };
      dst_port = Rule.Port_range (80, 90);
    }
  in
  Alcotest.(check bool) "matches" true (Rule.matches r (pkt ()));
  Alcotest.(check bool) "wrong proto" false (Rule.matches r (pkt ~proto:`Udp ()));
  Alcotest.(check bool) "wrong direction" false (Rule.matches r (pkt ~dir:`In ()));
  Alcotest.(check bool) "port out of range" false (Rule.matches r (pkt ~dport:91 ()));
  Alcotest.(check bool) "port range edge" true (Rule.matches r (pkt ~dport:90 ()));
  Alcotest.(check bool) "dst outside prefix" false
    (Rule.matches r (pkt ~dst:(ip 11 0 0 1) ()))

let test_last_match_wins () =
  let e =
    Pf_engine.create
      ~rules:
        [
          { Rule.block_all with Rule.quick = false };
          { Rule.pass_all with Rule.quick = false; keep_state = false };
        ]
      ()
  in
  let v = Pf_engine.filter e ~now:0 (pkt ()) in
  Alcotest.(check bool) "later pass overrides earlier block" true
    (v.Pf_engine.action = Rule.Pass);
  Alcotest.(check int) "walked both rules" 2 v.Pf_engine.rules_walked

let test_quick_short_circuits () =
  let e =
    Pf_engine.create
      ~rules:
        [
          { Rule.block_all with Rule.quick = true };
          { Rule.pass_all with Rule.quick = false; keep_state = false };
        ]
      ()
  in
  let v = Pf_engine.filter e ~now:0 (pkt ()) in
  Alcotest.(check bool) "quick block sticks" true (v.Pf_engine.action = Rule.Block);
  Alcotest.(check int) "stopped at rule 1" 1 v.Pf_engine.rules_walked

let test_default_pass () =
  let e = Pf_engine.create ~rules:[] () in
  let v = Pf_engine.filter e ~now:0 (pkt ()) in
  Alcotest.(check bool) "implicit pass" true (v.Pf_engine.action = Rule.Pass)

let test_keep_state_bypasses_rules () =
  let e = Pf_engine.create ~rules:[ Rule.pass_all ] () in
  let v1 = Pf_engine.filter e ~now:0 (pkt ()) in
  Alcotest.(check bool) "first packet walks rules" true (v1.Pf_engine.rules_walked > 0);
  Alcotest.(check bool) "no state hit yet" false v1.Pf_engine.state_hit;
  let v2 = Pf_engine.filter e ~now:0 (pkt ()) in
  Alcotest.(check bool) "second packet hits state" true v2.Pf_engine.state_hit;
  Alcotest.(check int) "no rules walked" 0 v2.Pf_engine.rules_walked

let test_state_admits_reply_direction () =
  (* The paper's firewall property: an established outgoing connection
     must keep working even when incoming traffic is blocked. *)
  let e =
    Pf_engine.create
      ~rules:
        [
          { Rule.block_all with Rule.direction = Rule.Dir_in; quick = false };
          { Rule.pass_all with Rule.direction = Rule.Dir_out; quick = false };
        ]
      ()
  in
  let out = pkt ~dir:`Out () in
  let v1 = Pf_engine.filter e ~now:0 out in
  Alcotest.(check bool) "outgoing passes" true (v1.Pf_engine.action = Rule.Pass);
  (* The reply: src/dst flipped, inbound. *)
  let reply =
    pkt ~dir:`In ~src:(ip 10 0 0 2) ~dst:(ip 10 0 0 1) ~sport:80 ~dport:40000 ()
  in
  let v2 = Pf_engine.filter e ~now:0 reply in
  Alcotest.(check bool) "reply admitted by state" true v2.Pf_engine.state_hit;
  (* An unrelated inbound packet is still blocked. *)
  let stranger = pkt ~dir:`In ~src:(ip 99 9 9 9) ~dport:40000 () in
  let v3 = Pf_engine.filter e ~now:0 stranger in
  Alcotest.(check bool) "stranger blocked" true (v3.Pf_engine.action = Rule.Block)

let ct_flow ?(proto = Conntrack.Ct_tcp) ?(lport = 12345) ?(rport = 22) () =
  {
    Conntrack.proto;
    local_ip = ip 10 0 0 1;
    local_port = lport;
    remote_ip = ip 10 0 0 2;
    remote_port = rport;
  }

let test_conntrack_export_import () =
  let ct = Conntrack.create () in
  let flow = ct_flow () in
  Conntrack.insert ct ~now:7 flow;
  let saved = Conntrack.export ct in
  Conntrack.clear ct;
  Alcotest.(check bool) "gone after clear" false (Conntrack.mem ct flow);
  Conntrack.import ct saved;
  Alcotest.(check bool) "back after import" true (Conntrack.mem ct flow);
  Alcotest.(check int) "size" 1 (Conntrack.size ct);
  Alcotest.(check (option int)) "last-seen time preserved" (Some 7)
    (Conntrack.last_seen ct flow)

let test_conntrack_expiry () =
  let sec = Newt_sim.Time.of_seconds in
  let e = Pf_engine.create ~rules:[ Rule.pass_all ] ~ttl:(sec 1.0) () in
  ignore (Pf_engine.filter e ~now:0 (pkt ()));
  Alcotest.(check int) "tracked" 1 (Conntrack.size (Pf_engine.conntrack e));
  (* Traffic refreshes the entry: a state hit at 0.9 s resets the
     idle clock, so the sweep at 1.5 s finds nothing to drop... *)
  let v = Pf_engine.filter e ~now:(sec 0.9) (pkt ()) in
  Alcotest.(check bool) "state hit refreshes" true v.Pf_engine.state_hit;
  Alcotest.(check int) "refreshed entry survives" 0
    (Pf_engine.sweep e ~now:(sec 1.5));
  (* ...and the entry dies once idle past the TTL. *)
  Alcotest.(check int) "idle entry expires" 1
    (Pf_engine.sweep e ~now:(sec 2.0));
  let v2 = Pf_engine.filter e ~now:(sec 2.0) (pkt ()) in
  Alcotest.(check bool) "expired flow walks rules again" false
    v2.Pf_engine.state_hit

let test_conntrack_cap_evicts_oldest () =
  let ct = Conntrack.create ~max_entries:4 () in
  for i = 1 to 4 do
    Conntrack.insert ct ~now:i (ct_flow ~lport:i ())
  done;
  Conntrack.insert ct ~now:5 (ct_flow ~lport:5 ());
  Alcotest.(check int) "capped" 4 (Conntrack.size ct);
  Alcotest.(check bool) "coldest entry evicted" false
    (Conntrack.mem ct (ct_flow ~lport:1 ()));
  Alcotest.(check bool) "newcomer admitted" true
    (Conntrack.mem ct (ct_flow ~lport:5 ()));
  (* Refreshing an entry is not an insertion: no eviction. *)
  Conntrack.insert ct ~now:6 (ct_flow ~lport:2 ());
  Alcotest.(check int) "refresh keeps size" 4 (Conntrack.size ct)

let test_conntrack_handshake_confirmation () =
  let ct = Conntrack.create () in
  let f = ct_flow () in
  Conntrack.insert ct ~now:1 ~dir:`In f;
  Alcotest.(check (option bool)) "new entry starts half-open" (Some false)
    (Conntrack.confirmed ct f);
  Alcotest.(check int) "counted half-open" 1 (Conntrack.half_open_count ct);
  (* A lone reply is not enough: an inbound flood SYN provokes an
     automatic RST/SYN-ACK, so two-way traffic comes for free. *)
  ignore (Conntrack.seen ct ~now:2 ~dir:`Out f);
  Alcotest.(check (option bool)) "a lone reply does not confirm" (Some false)
    (Conntrack.confirmed ct f);
  ignore (Conntrack.seen ct ~now:3 ~dir:`Out f);
  Alcotest.(check (option bool)) "more replies still do not" (Some false)
    (Conntrack.confirmed ct f);
  (* The originator speaking again after the reply — the handshake's
     third packet, which a spoofed source can never send. *)
  ignore (Conntrack.seen ct ~now:4 ~dir:`In f);
  Alcotest.(check (option bool)) "originator-after-reply confirms"
    (Some true) (Conntrack.confirmed ct f);
  Alcotest.(check int) "no longer half-open" 0 (Conntrack.half_open_count ct);
  (* The confirmation bit travels through export/import. *)
  let ct2 = Conntrack.create () in
  Conntrack.import ct2 (Conntrack.export ct);
  Alcotest.(check (option bool)) "confirmation survives a snapshot"
    (Some true) (Conntrack.confirmed ct2 f)

let test_conntrack_flood_evicts_half_open_first () =
  (* Regression against the state-blind LRU: under a SYN flood the
     oldest entries are precisely the long-lived established flows, so
     pure LRU evicted the connections the recovery story exists to
     protect and kept the attacker's half-open state. *)
  let ct = Conntrack.create ~max_entries:8 () in
  Conntrack.insert ct ~now:1 ~confirmed:true (ct_flow ~lport:1 ());
  Conntrack.insert ct ~now:2 ~confirmed:true (ct_flow ~lport:2 ());
  for i = 3 to 20 do
    (* The flood: strictly fresher than both established flows. *)
    Conntrack.insert ct ~now:i ~dir:`In (ct_flow ~lport:(1000 + i) ())
  done;
  Alcotest.(check int) "capped" 8 (Conntrack.size ct);
  Alcotest.(check bool) "oldest established flow survives the flood" true
    (Conntrack.mem ct (ct_flow ~lport:1 ()));
  Alcotest.(check bool) "second established flow survives too" true
    (Conntrack.mem ct (ct_flow ~lport:2 ()));
  Alcotest.(check int) "every eviction hit a half-open entry" 12
    (Conntrack.evicted_half_open ct);
  Alcotest.(check int) "no established entry was sacrificed" 0
    (Conntrack.evicted_established ct)

let test_conntrack_established_evicted_only_as_last_resort () =
  let ct = Conntrack.create ~max_entries:4 () in
  for i = 1 to 4 do
    Conntrack.insert ct ~now:i ~confirmed:true (ct_flow ~lport:i ())
  done;
  Conntrack.insert ct ~now:5 ~dir:`In (ct_flow ~lport:5 ());
  Alcotest.(check bool) "all-established table evicts its oldest" false
    (Conntrack.mem ct (ct_flow ~lport:1 ()));
  Alcotest.(check int) "counted as an established eviction" 1
    (Conntrack.evicted_established ct);
  Alcotest.(check int) "no half-open eviction happened" 0
    (Conntrack.evicted_half_open ct)

let test_conntrack_import_keeps_expiry_clock () =
  (* The restart scenario the timestamps exist for: entries restored
     from a snapshot must be as close to expiry as when exported, not
     born-again fresh. *)
  let ct = Conntrack.create () in
  let old_flow = ct_flow ~lport:1 () and fresh_flow = ct_flow ~lport:2 () in
  Conntrack.insert ct ~now:10 old_flow;
  Conntrack.insert ct ~now:500 fresh_flow;
  let saved = Conntrack.export ct in
  let ct2 = Conntrack.create () in
  Conntrack.import ct2 saved;
  Alcotest.(check int) "only the stale restored entry expires" 1
    (Conntrack.expire ct2 ~now:600 ~ttl:200);
  Alcotest.(check bool) "stale gone" false (Conntrack.mem ct2 old_flow);
  Alcotest.(check bool) "fresh kept" true (Conntrack.mem ct2 fresh_flow)

let test_classify_tcp () =
  let src = ip 10 0 0 1 and dst = ip 10 0 0 2 in
  let seg =
    Tcp_wire.encode ~src ~dst
      {
        Tcp_wire.src_port = 40000;
        dst_port = 443;
        seq = 0;
        ack = 0;
        flags = Tcp_wire.flag_syn;
        window = 1000;
        mss = Some 1460;
        wscale = None;
      }
      ~payload:Bytes.empty
  in
  let packet =
    Ipv4.packet
      { Ipv4.src; dst; protocol = Ipv4.Tcp; ttl = 64; ident = 0; total_len = 0 }
      ~payload:seg
  in
  match Pf_engine.classify ~dir:`Out packet with
  | Some key ->
      Alcotest.(check bool) "proto" true (key.Rule.proto = `Tcp);
      Alcotest.(check int) "sport" 40000 key.Rule.src_port;
      Alcotest.(check int) "dport" 443 key.Rule.dst_port;
      Alcotest.(check bool) "src" true (Addr.Ipv4.equal key.Rule.src_ip src)
  | None -> Alcotest.fail "classify failed"

let test_classify_garbage () =
  Alcotest.(check bool) "short buffer" true
    (Pf_engine.classify ~dir:`In (Bytes.create 4) = None);
  let junk = Bytes.make 40 '\xff' in
  Alcotest.(check bool) "not ipv4" true (Pf_engine.classify ~dir:`In junk = None)

let test_generated_ruleset_shape () =
  let rules = Pf_engine.generate_ruleset (Rng.create 3) ~n:1024 ~protect_port:5001 in
  Alcotest.(check int) "1024 rules" 1024 (List.length rules);
  let e = Pf_engine.create ~rules () in
  (* The protected flow passes... *)
  let v = Pf_engine.filter e ~now:0 (pkt ~dport:5001 ()) in
  Alcotest.(check bool) "protected port passes" true (v.Pf_engine.action = Rule.Pass);
  (* ...and the noise rules really do block their targets. *)
  let blocked =
    List.exists
      (fun r ->
        match (r.Rule.action, r.Rule.src, r.Rule.dst_port) with
        | Rule.Block, Rule.Net { prefix; _ }, Rule.Port p ->
            let probe = pkt ~src:prefix ~dport:p () in
            (Pf_engine.filter e ~now:0 probe).Pf_engine.action = Rule.Block
        | _ -> false)
      rules
  in
  Alcotest.(check bool) "noise rules block their targets" true blocked

let test_restore () =
  let e = Pf_engine.create () in
  let rules = Pf_engine.generate_ruleset (Rng.create 5) ~n:16 ~protect_port:80 in
  let states = [ (ct_flow ~lport:1 ~rport:2 (), 42, true) ] in
  Pf_engine.restore e ~rules ~states;
  Alcotest.(check int) "rules restored" 16 (List.length (Pf_engine.export_rules e));
  Alcotest.(check int) "states restored" 1 (List.length (Pf_engine.export_states e))

(* {2 The sharded filter's partitioned recovery (Pf_srv + [owns])} *)

module Engine = Newt_sim.Engine
module Machine = Newt_hw.Machine
module Component = Newt_stack.Component
module Pf_srv = Newt_stack.Pf_srv

let make_pf_srv ?max_entries ?owns () =
  let e = Engine.create () in
  let m = Machine.create e in
  let core = Machine.add_dedicated_core m in
  let comp = Component.create m ~name:"pf" ~core () in
  let store = Hashtbl.create 8 in
  let srv =
    Pf_srv.create comp ~save:(Hashtbl.replace store)
      ~load:(Hashtbl.find_opt store) ?max_entries ?owns ()
  in
  (e, comp, srv)

let test_pf_srv_partitioned_recovery () =
  (* A shard owning only even local ports: its restart must re-track
     exactly its own slice — from the snapshot (last-seen preserved, so
     idle entries are not resurrected as fresh) and from the transport
     query — and never a foreign shard's flows. *)
  let owns (f : Conntrack.flow) = f.Conntrack.local_port mod 2 = 0 in
  let e, comp, srv = make_pf_srv ~owns () in
  let ct = Pf_engine.conntrack (Pf_srv.engine_of srv) in
  Conntrack.insert ct ~now:5 (ct_flow ~lport:2 ());
  Conntrack.insert ct ~now:7 (ct_flow ~lport:4 ());
  (* A foreign flow that somehow reached this shard's table: it may die
     with the crash but must never come back here. *)
  Conntrack.insert ct ~now:9 (ct_flow ~lport:3 ());
  Pf_srv.repersist srv;
  Pf_srv.set_conntrack_sources srv
    ~tcp:(fun () -> [ ct_flow ~lport:6 (); ct_flow ~lport:5 () ])
    ~udp:(fun () -> []);
  ignore (Engine.schedule e 1000 (fun () -> Component.crash comp));
  ignore (Engine.schedule e 2000 (fun () -> Component.restart comp));
  Engine.run ~until:2500 e;
  Alcotest.(check int) "exactly the owned slice re-tracked" 3 (Conntrack.size ct);
  Alcotest.(check (option int)) "snapshot entry keeps its last-seen time"
    (Some 5)
    (Conntrack.last_seen ct (ct_flow ~lport:2 ()));
  Alcotest.(check (option int)) "second snapshot entry too" (Some 7)
    (Conntrack.last_seen ct (ct_flow ~lport:4 ()));
  Alcotest.(check bool) "foreign snapshot flow not re-tracked" false
    (Conntrack.mem ct (ct_flow ~lport:3 ()));
  Alcotest.(check (option int)) "transport flow (re)tracked as of now"
    (Some 2000)
    (Conntrack.last_seen ct (ct_flow ~lport:6 ()));
  Alcotest.(check bool) "foreign transport flow not re-tracked" false
    (Conntrack.mem ct (ct_flow ~lport:5 ()));
  (* The preserved clocks are what keeps restored-but-idle entries on
     schedule: both snapshot entries expire, the live one survives. *)
  Alcotest.(check int) "idle restored entries expire on schedule" 2
    (Conntrack.expire ct ~now:2400 ~ttl:1000)

let test_pf_srv_per_shard_cap () =
  (* The sharded deployment hands each of N shards [total/N] entries;
     the cap must bind per instance. *)
  let _, _, srv = make_pf_srv ~max_entries:4 () in
  let ct = Pf_engine.conntrack (Pf_srv.engine_of srv) in
  for i = 1 to 6 do
    Conntrack.insert ct ~now:i (ct_flow ~lport:(40000 + i) ())
  done;
  Alcotest.(check int) "per-shard cap honored" 4 (Conntrack.size ct);
  Alcotest.(check bool) "coldest entry evicted" false
    (Conntrack.mem ct (ct_flow ~lport:40001 ()));
  Alcotest.(check bool) "hottest entry kept" true
    (Conntrack.mem ct (ct_flow ~lport:40006 ()))

let contains s needle =
  let n = String.length needle and m = String.length s in
  let rec go i = i + n <= m && (String.sub s i n = needle || go (i + 1)) in
  go 0

let test_rule_pp_mentions_essentials () =
  let r =
    {
      Rule.block_all with
      Rule.proto = Rule.Match_udp;
      dst_port = Rule.Port 53;
      quick = true;
    }
  in
  let s = Format.asprintf "%a" Rule.pp r in
  List.iter
    (fun needle ->
      Alcotest.(check bool) (Printf.sprintf "mentions %s" needle) true (contains s needle))
    [ "block"; "quick"; "udp"; "53" ]

let suite =
  [
    ("rule matching dimensions", `Quick, test_rule_matching);
    ("last matching rule wins", `Quick, test_last_match_wins);
    ("quick short-circuits", `Quick, test_quick_short_circuits);
    ("implicit default pass", `Quick, test_default_pass);
    ("keep-state bypasses the ruleset", `Quick, test_keep_state_bypasses_rules);
    ("state admits replies through a block", `Quick, test_state_admits_reply_direction);
    ("conntrack export/import (recovery)", `Quick, test_conntrack_export_import);
    ("conntrack idle entries expire", `Quick, test_conntrack_expiry);
    ("conntrack cap evicts the coldest entry", `Quick, test_conntrack_cap_evicts_oldest);
    ( "conntrack confirmation needs the handshake shape",
      `Quick,
      test_conntrack_handshake_confirmation );
    ( "conntrack eviction spares established flows under flood",
      `Quick,
      test_conntrack_flood_evicts_half_open_first );
    ( "conntrack evicts established only as a last resort",
      `Quick,
      test_conntrack_established_evicted_only_as_last_resort );
    ( "conntrack import keeps the expiry clock",
      `Quick,
      test_conntrack_import_keeps_expiry_clock );
    ( "pf shard recovery re-tracks only its own slice",
      `Quick,
      test_pf_srv_partitioned_recovery );
    ("pf shard conntrack cap binds per instance", `Quick, test_pf_srv_per_shard_cap);
    ("classify parses tcp packets", `Quick, test_classify_tcp);
    ("classify rejects garbage", `Quick, test_classify_garbage);
    ("generated 1024-rule set behaves", `Quick, test_generated_ruleset_shape);
    ("restore rules + states", `Quick, test_restore);
    ("rule pretty-printer", `Quick, test_rule_pp_mentions_essentials);
  ]
