(* Tests for Verify.Race: the static domain-ownership lint over the
   native pinning plan, the dynamic vector-clock happens-before
   checker over the Channels.Hook native event family, and the Loop
   post-vs-park stress that backs the lost-wakeup audit. *)

module Hook = Newt_channels.Hook
module Spsc = Newt_channels.Spsc_queue
module Race = Newt_verify.Race
module Report = Newt_verify.Report
module Time = Newt_sim.Time
module Loop = Newt_runtime.Loop
module Native = Newt_runtime.Native

let has_check (r : Report.t) name =
  List.exists (fun (v : Report.violation) -> v.Report.check = name)
    r.Report.violations

(* {2 Static layer: the ownership lint over the native plan} *)

let test_plan_clean () =
  (* The real wiring must lint clean at every placement the CLI
     defaults to — the round-robin changes who shares a domain. *)
  List.iter
    (fun d ->
      let r =
        Race.check_plan
          ~title:(Printf.sprintf "%d domains" d)
          (Native.ownership_plan ~domains:d ())
      in
      Alcotest.(check bool)
        (Printf.sprintf "plan clean at %d domains" d)
        true (Report.ok r);
      (* The lint actually looked at things. *)
      Alcotest.(check bool) "rings examined" true
        (List.assoc "ring-spsc" r.Report.checks > 0))
    [ 2; 4; 8 ]

let test_plan_flags_two_producers () =
  let r =
    Race.check_plan
      (Native.ownership_plan ~break_race:Native.Spsc_two_producers ~domains:2
         ())
  in
  Alcotest.(check bool) "sabotaged plan rejected" false (Report.ok r);
  Alcotest.(check bool) "ring-spsc fired" true (has_check r "ring-spsc");
  Alcotest.(check int) "exit code 1" 1 (Report.exit_code r)

let test_plan_flags_unfenced_counter () =
  let r =
    Race.check_plan
      (Native.ownership_plan ~break_race:Native.Loop_unfenced_counter
         ~domains:2 ())
  in
  Alcotest.(check bool) "sabotaged plan rejected" false (Report.ok r);
  Alcotest.(check bool) "cross-domain fired" true (has_check r "cross-domain")

(* {2 Hook sampling} *)

let test_hook_sampling_deterministic () =
  (* Power-of-two mask sampling: exactly one in N access emissions is
     kept, and the (seen, kept) counters account for every call. *)
  let delivered = ref 0 in
  Hook.set_native ~sample:16 (fun _ -> incr delivered);
  for _ = 1 to 1600 do
    Hook.native_access Hook.N_counter ~id:9 ~sub:0 ~write:true
  done;
  let seen, kept = Hook.native_access_counts () in
  Hook.clear_native ();
  Alcotest.(check int) "every access counted" 1600 seen;
  Alcotest.(check int) "one in 16 kept" 100 kept;
  Alcotest.(check int) "kept accesses delivered" 100 !delivered

(* {2 Dynamic layer} *)

let races_with (o : Race.Dynamic.outcome) name =
  List.filter (fun (r : Race.Dynamic.race_view) -> r.Race.Dynamic.check = name)
    o.Race.Dynamic.races

let test_dynamic_clean_spsc () =
  (* Positive control: a properly owned SPSC ring moving a million
     messages between two domains is clock-ordered end to end — the
     detector must stay silent. Payload integrity is checked too, so a
     real reordering would fail the sum even if the detector missed
     it. *)
  Race.Dynamic.arm ();
  let q = Spsc.create ~id:3 ~capacity:1024 () in
  Race.Dynamic.fence ();
  let n = 1_000_000 in
  let prod =
    Domain.spawn (fun () ->
        for i = 1 to n do
          while not (Spsc.try_push q i) do
            Domain.cpu_relax ()
          done
        done)
  in
  let got = ref 0 and sum = ref 0 in
  while !got < n do
    match Spsc.try_pop q with
    | Some v ->
        incr got;
        sum := !sum + v
    | None -> Domain.cpu_relax ()
  done;
  Domain.join prod;
  let o = Race.Dynamic.disarm () in
  Alcotest.(check int) "all messages arrived" n !got;
  Alcotest.(check bool) "payload intact" true (!sum = n * (n + 1) / 2);
  Alcotest.(check bool) "no races on a clean ring" true (Race.Dynamic.ok o);
  Alcotest.(check int) "zero reports" 0 (List.length o.Race.Dynamic.races);
  Alcotest.(check bool) "events were processed" true
    (o.Race.Dynamic.events > n)

let test_dynamic_two_producers () =
  (* Negative control: two domains pushing the same ring. The dynamic
     ownership discipline must flag the second producer even when the
     interleaving happens to be benign. *)
  Race.Dynamic.arm ();
  let q = Spsc.create ~id:4 ~capacity:4096 () in
  Race.Dynamic.fence ();
  let pusher () =
    Domain.spawn (fun () ->
        for i = 1 to 1000 do
          ignore (Spsc.try_push q i : bool)
        done)
  in
  let d1 = pusher () in
  let d2 = pusher () in
  Domain.join d1;
  Domain.join d2;
  while Spsc.try_pop q <> None do () done;
  let o = Race.Dynamic.disarm () in
  Alcotest.(check bool) "detector rejected the run" false (Race.Dynamic.ok o);
  Alcotest.(check bool) "ring-producer violation reported" true
    (races_with o "ring-producer" <> []);
  let r = List.hd (races_with o "ring-producer") in
  Alcotest.(check bool) "both access stacks captured" true
    (r.Race.Dynamic.first.Race.Dynamic.stack <> []
    && r.Race.Dynamic.second.Race.Dynamic.stack <> []);
  Alcotest.(check bool) "replayable trace attached" true
    (r.Race.Dynamic.trace <> [])

let test_dynamic_unfenced_counter () =
  (* Two domains writing one location with no release/acquire edge
     between them: the FastTrack core must report it even though
     neither domain ever released a sync object. *)
  Race.Dynamic.arm ();
  Race.Dynamic.fence ();
  let writer () =
    Domain.spawn (fun () ->
        Hook.native_access Hook.N_counter ~id:5 ~sub:0 ~write:true)
  in
  let d1 = writer () in
  Domain.join d1;
  let d2 = writer () in
  Domain.join d2;
  let o = Race.Dynamic.disarm () in
  Alcotest.(check bool) "unordered writes rejected" false (Race.Dynamic.ok o);
  Alcotest.(check bool) "hb-race reported" true
    (races_with o "hb-race" <> [])

let test_dynamic_lock_orders_accesses () =
  (* The same two unordered writes become clean when both ride a lock:
     release on unlock, acquire on lock. *)
  Race.Dynamic.arm ();
  Race.Dynamic.fence ();
  let locked_write () =
    Hook.native_emit (Hook.N_lock { lock = 7; acquire = true });
    Hook.native_access Hook.N_pool_slot ~id:7 ~sub:1 ~write:true;
    Hook.native_emit (Hook.N_lock { lock = 7; acquire = false })
  in
  let d1 = Domain.spawn locked_write in
  Domain.join d1;
  let d2 = Domain.spawn locked_write in
  Domain.join d2;
  let o = Race.Dynamic.disarm () in
  Alcotest.(check bool) "lock-ordered writes accepted" true
    (Race.Dynamic.ok o)

(* {2 Loop: the post-vs-park lost-wakeup stress} *)

let test_loop_post_vs_park_stress () =
  (* A million cross-domain posts against a loop that parks whenever
     its spin budget runs dry. If the doorbell could lose a wakeup
     (the window audited at the park site in loop.ml), the loop would
     sleep on a non-empty inbox and this test would stall short of the
     count; the tiny spin budget maximises park/post interleavings. *)
  let t0 = Unix.gettimeofday () in
  let now () =
    int_of_float
      ((Unix.gettimeofday () -. t0) *. float_of_int Time.cycles_per_second)
  in
  let loop = Loop.create ~index:0 ~now ~spin_budget:32 () in
  let executed = Atomic.make 0 in
  let n = 1_000_000 in
  let runner = Domain.spawn (fun () -> Loop.run loop) in
  let poster =
    Domain.spawn
      (fun () ->
        for _ = 1 to n do
          Loop.post loop (fun () -> Atomic.incr executed)
        done)
  in
  Domain.join poster;
  (* Every post is already in the inbox; the loop must drain them all
     without further prodding. *)
  let deadline = Unix.gettimeofday () +. 60.0 in
  while Atomic.get executed < n && Unix.gettimeofday () < deadline do
    Unix.sleepf 0.01
  done;
  Loop.request_stop loop;
  Domain.join runner;
  Alcotest.(check bool) "loop survived" true (Loop.failure loop = None);
  Alcotest.(check int) "every post executed (no lost wakeup)" n
    (Atomic.get executed);
  let s = Loop.stats loop in
  Alcotest.(check bool) "posts counted as remote" true
    (s.Loop.posts_remote >= n)

let suite =
  [
    ("plan: native wiring lints clean at 2/4/8 domains", `Quick,
      test_plan_clean);
    ("plan: two-producer sabotage flagged", `Quick,
      test_plan_flags_two_producers);
    ("plan: unfenced counter flagged", `Quick,
      test_plan_flags_unfenced_counter);
    ("hook: sampling is deterministic and accounted", `Quick,
      test_hook_sampling_deterministic);
    ("dynamic: clean SPSC ring, 1M messages, zero races", `Slow,
      test_dynamic_clean_spsc);
    ("dynamic: two producers on one ring rejected", `Quick,
      test_dynamic_two_producers);
    ("dynamic: unfenced counter writes rejected", `Quick,
      test_dynamic_unfenced_counter);
    ("dynamic: lock-ordered writes accepted", `Quick,
      test_dynamic_lock_orders_accesses);
    ("loop: 1M post-vs-park stress, no lost wakeup", `Slow,
      test_loop_post_vs_park_stress);
  ]
