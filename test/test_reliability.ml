(* Tests for the reliability substrate: the storage server, the
   reincarnation server (supervising generic component servers), and
   the fault injector's draw distribution. *)

module Engine = Newt_sim.Engine
module Time = Newt_sim.Time
module Machine = Newt_hw.Machine
module Rng = Newt_sim.Rng
module Component = Newt_stack.Component
module Storage = Newt_reliability.Storage
module Reincarnation = Newt_reliability.Reincarnation
module Fault_inject = Newt_reliability.Fault_inject

let test_storage_kv () =
  let s = Storage.create () in
  Storage.put s ~owner:"ip" ~key:"routes" "r1";
  Storage.put s ~owner:"tcp" ~key:"routes" "different-namespace";
  Alcotest.(check (option string)) "get" (Some "r1") (Storage.get s ~owner:"ip" ~key:"routes");
  Alcotest.(check (option string)) "namespaced" (Some "different-namespace")
    (Storage.get s ~owner:"tcp" ~key:"routes");
  Storage.put s ~owner:"ip" ~key:"routes" "r2";
  Alcotest.(check (option string)) "overwrite" (Some "r2") (Storage.get s ~owner:"ip" ~key:"routes");
  Storage.delete s ~owner:"ip" ~key:"routes";
  Alcotest.(check (option string)) "deleted" None (Storage.get s ~owner:"ip" ~key:"routes")

let test_storage_owner_view () =
  let s = Storage.create () in
  let save, load = Storage.owner_view s ~owner:"udp" in
  save "sockets" "blob";
  Alcotest.(check (option string)) "through the view" (Some "blob") (load "sockets");
  Alcotest.(check (option string)) "same as direct get" (Some "blob")
    (Storage.get s ~owner:"udp" ~key:"sockets")

let test_storage_crash_loses_everything () =
  let s = Storage.create () in
  Storage.put s ~owner:"a" ~key:"k" "v";
  Storage.crash s;
  Alcotest.(check int) "empty" 0 (Storage.entries s);
  Alcotest.(check (option string)) "gone" None (Storage.get s ~owner:"a" ~key:"k")

let make_world () =
  let e = Engine.create () in
  let m = Machine.create e in
  (e, m)

let make_comp m name =
  let core = Machine.add_dedicated_core m in
  Component.create m ~name ~core ()

let test_rs_restarts_crashed_server () =
  let e, m = make_world () in
  let c = make_comp m "victim" in
  let rs = Reincarnation.create m () in
  let crash_seen = ref false and restart_seen = ref false in
  Reincarnation.watch rs c
    ~notify_crash:[ (fun () -> crash_seen := true) ]
    ~notify_restart:[ (fun () -> restart_seen := true) ]
    ();
  Reincarnation.start rs;
  ignore (Engine.schedule e (Time.of_seconds 0.5) (fun () -> Reincarnation.kill rs c));
  Engine.run e ~until:(Time.of_seconds 2.0);
  Alcotest.(check bool) "neighbours notified of crash" true !crash_seen;
  Alcotest.(check bool) "neighbours notified of restart" true !restart_seen;
  Alcotest.(check bool) "victim alive again" true (Component.alive c);
  Alcotest.(check int) "one restart" 1 (Reincarnation.restarts rs)

let test_rs_heartbeat_catches_hang () =
  let e, m = make_world () in
  let c = make_comp m "hanger" in
  let rs = Reincarnation.create m ~heartbeat_period:(Time.of_seconds 0.05) () in
  Reincarnation.watch rs c ();
  Reincarnation.start rs;
  ignore (Engine.schedule e (Time.of_seconds 0.2) (fun () -> Component.hang c));
  Engine.run e ~until:(Time.of_seconds 1.0);
  Alcotest.(check bool) "reset and responsive again" true (Component.responsive c);
  Alcotest.(check bool) "restarted at least once" true (Reincarnation.restarts_of rs c >= 1)

let test_rs_notification_order () =
  (* Crash hooks must run before the component's restart; restart hooks
     after it (Section IV-D's resubmission dance depends on this). *)
  let e, m = make_world () in
  let c = make_comp m "ordered" in
  let log = ref [] in
  Component.on_restart c (fun ~fresh:_ -> log := "component-recovery" :: !log);
  let rs = Reincarnation.create m () in
  Reincarnation.watch rs c
    ~notify_crash:[ (fun () -> log := "neighbour-abort" :: !log) ]
    ~notify_restart:[ (fun () -> log := "neighbour-resubmit" :: !log) ]
    ();
  Reincarnation.start rs;
  ignore (Engine.schedule e 100 (fun () -> Reincarnation.kill rs c));
  Engine.run e ~until:(Time.of_seconds 1.0);
  Alcotest.(check (list string)) "order"
    [ "neighbour-abort"; "component-recovery"; "neighbour-resubmit" ]
    (List.rev !log)

let test_rs_double_kill_single_restart () =
  let e, m = make_world () in
  let c = make_comp m "victim" in
  let rs = Reincarnation.create m () in
  Reincarnation.watch rs c ();
  Reincarnation.start rs;
  ignore
    (Engine.schedule e 100 (fun () ->
         Reincarnation.kill rs c;
         (* A second signal while the restart is pending. *)
         Reincarnation.kill rs c));
  Engine.run e ~until:(Time.of_seconds 1.0);
  Alcotest.(check int) "only one restart" 1 (Reincarnation.restarts rs)

let test_rs_hang_on_heartbeat_boundary () =
  (* The pathological instant: the server stops responding at exactly
     the moment a heartbeat round fires. Whichever of the two events
     the engine orders first, the hang must be caught no later than the
     following round, and exactly once. *)
  let e, m = make_world () in
  let c = make_comp m "boundary" in
  let period = Time.of_seconds 0.05 in
  let rs = Reincarnation.create m ~heartbeat_period:period () in
  Reincarnation.watch rs c ();
  Reincarnation.start rs;
  (* Round k fires at k * period; hang precisely at round 4. *)
  ignore (Engine.schedule_at e (4 * period) (fun () -> Component.hang c));
  Engine.run e ~until:(Time.of_seconds 1.0);
  Alcotest.(check bool) "responsive again" true (Component.responsive c);
  Alcotest.(check int) "caught exactly once" 1 (Reincarnation.restarts_of rs c)

let test_rs_crash_inside_restart_window () =
  (* A second crash signal lands mid-window, after the neighbours were
     told but before the restart timer fires: the pending restart must
     absorb it — one recovery, and the server is up at the end. *)
  let e, m = make_world () in
  let c = make_comp m "victim" in
  let delay = Time.of_seconds 0.12 in
  let rs = Reincarnation.create m ~restart_delay:delay () in
  let crash_notices = ref 0 in
  Reincarnation.watch rs c ~notify_crash:[ (fun () -> incr crash_notices) ] ();
  Reincarnation.start rs;
  ignore (Engine.schedule e 100 (fun () -> Reincarnation.kill rs c));
  ignore
    (Engine.schedule e (100 + (delay / 2)) (fun () ->
         Alcotest.(check bool) "still down mid-window" false (Component.alive c);
         Reincarnation.kill rs c));
  Engine.run e ~until:(Time.of_seconds 1.0);
  Alcotest.(check bool) "alive at the end" true (Component.alive c);
  Alcotest.(check int) "one restart" 1 (Reincarnation.restarts rs);
  Alcotest.(check int) "neighbours aborted once" 1 !crash_notices

let test_rs_two_components_same_round () =
  (* Two servers hang together; one heartbeat round catches both and
     each recovers independently. *)
  let e, m = make_world () in
  let a = make_comp m "a" and b = make_comp m "b" in
  let rs = Reincarnation.create m ~heartbeat_period:(Time.of_seconds 0.05) () in
  Reincarnation.watch rs a ();
  Reincarnation.watch rs b ();
  Reincarnation.start rs;
  ignore
    (Engine.schedule e (Time.of_seconds 0.12) (fun () ->
         Component.hang a;
         Component.hang b));
  Engine.run e ~until:(Time.of_seconds 1.0);
  Alcotest.(check bool) "a responsive" true (Component.responsive a);
  Alcotest.(check bool) "b responsive" true (Component.responsive b);
  Alcotest.(check int) "a restarted once" 1 (Reincarnation.restarts_of rs a);
  Alcotest.(check int) "b restarted once" 1 (Reincarnation.restarts_of rs b);
  Alcotest.(check int) "two restarts total" 2 (Reincarnation.restarts rs)

let test_rs_on_reincarnated_composes () =
  (* Two supervisors (say, the continuous verifier and a logger) both
     register the full-recovery callback: registration must compose,
     not silently replace. *)
  let e, m = make_world () in
  let c = make_comp m "victim" in
  let rs = Reincarnation.create m () in
  Reincarnation.watch rs c ();
  let log = ref [] in
  Reincarnation.set_on_reincarnated rs (fun comp ->
      log := ("first:" ^ Component.name comp) :: !log);
  Reincarnation.set_on_reincarnated rs (fun comp ->
      log := ("second:" ^ Component.name comp) :: !log);
  Reincarnation.start rs;
  ignore (Engine.schedule e (Time.of_seconds 0.2) (fun () -> Reincarnation.kill rs c));
  Engine.run e ~until:(Time.of_seconds 1.0);
  Alcotest.(check (list string)) "both callbacks, registration order"
    [ "first:victim"; "second:victim" ]
    (List.rev !log)

let test_component_recovery_steps_and_arming () =
  let _, m = make_world () in
  let c = make_comp m "ip" in
  Component.on_restart c ~step:"load-routes" (fun ~fresh:_ -> ());
  (* Unlabeled hooks run but are not addressable crash points. *)
  Component.on_restart c (fun ~fresh:_ -> ());
  Component.on_restarted c ~step:"warm-caches" (fun () -> ());
  Alcotest.(check (list string)) "labeled procedure, execution order"
    [ "revive-channels"; "load-routes"; "republish-exports"; "warm-caches" ]
    (Component.recovery_steps c);
  Alcotest.(check (option string)) "nothing armed" None (Component.armed_crash c);
  Component.arm_crash_after c ~step:"load-routes";
  Alcotest.(check (option string)) "armed" (Some "load-routes")
    (Component.armed_crash c);
  Component.disarm_crash c;
  Alcotest.(check (option string)) "disarmed" None (Component.armed_crash c)

let test_rs_mid_recovery_crash_repeats_recovery () =
  (* The model checker's injector: the victim dies again right after a
     recovery step. The reincarnation server must notice the corpse and
     run the whole recovery again, converging on the second pass. *)
  let e, m = make_world () in
  let c = make_comp m "victim" in
  let recoveries = ref 0 in
  Component.on_restart c ~step:"reload-state" (fun ~fresh -> if not fresh then incr recoveries);
  let rs = Reincarnation.create m () in
  Reincarnation.watch rs c ();
  Reincarnation.start rs;
  Component.arm_crash_after c ~step:"reload-state";
  ignore (Engine.schedule e (Time.of_seconds 0.2) (fun () -> Reincarnation.kill rs c));
  Engine.run e ~until:(Time.of_seconds 2.0);
  Alcotest.(check bool) "converged despite dying mid-recovery" true
    (Component.alive c);
  Alcotest.(check int) "recovery ran twice" 2 !recoveries;
  Alcotest.(check int) "the mid-recovery death was counted" 1
    (Reincarnation.mid_recovery_crashes rs);
  Alcotest.(check (option string)) "one-shot arming consumed" None
    (Component.armed_crash c);
  Alcotest.(check int) "incarnation k+2" 2 (Component.incarnation c)

let test_storage_export_import_survives_surgery () =
  (* State written by incarnation k is exported, survives a crash of
     the storage process itself via import, and feeds incarnation k+2 —
     the recovery dies once in the middle and repeats. *)
  let e, m = make_world () in
  let c = make_comp m "ip" in
  let s = Storage.create () in
  let save, load = Storage.owner_view s ~owner:"ip" in
  save "routes" "default-via-gw0";
  save "arp" "neigh-table";
  Storage.put s ~owner:"tcp" ~key:"other" "dies-with-the-store";
  let loaded = ref [] in
  Component.on_restart c ~step:"load-routes" (fun ~fresh ->
      if not fresh then loaded := load "routes" :: !loaded);
  let rs = Reincarnation.create m () in
  Reincarnation.watch rs c ();
  Reincarnation.start rs;
  (* Supervisor surgery: snapshot the namespace, lose the store, replay
     the snapshot into the (now empty) store. *)
  let snap = Storage.export s ~owner:"ip" in
  Alcotest.(check (list (pair string string))) "snapshot sorted by key"
    [ ("arp", "neigh-table"); ("routes", "default-via-gw0") ]
    snap;
  Storage.crash s;
  Storage.import s ~owner:"ip" snap;
  Alcotest.(check (option string)) "unrelated owners not resurrected" None
    (Storage.get s ~owner:"tcp" ~key:"other");
  Component.arm_crash_after c ~step:"load-routes";
  ignore (Engine.schedule e (Time.of_seconds 0.2) (fun () -> Reincarnation.kill rs c));
  Engine.run e ~until:(Time.of_seconds 2.0);
  Alcotest.(check int) "incarnation k+2" 2 (Component.incarnation c);
  Alcotest.(check (list (option string)))
    "both recovery passes read incarnation k's state"
    [ Some "default-via-gw0"; Some "default-via-gw0" ]
    (List.rev !loaded)

let test_rs_restarting_window_absorbs_faults () =
  (* [restarting] exposes the crash-detected-but-not-yet-restarted
     window; a fault injected inside it must be absorbed. *)
  let e, m = make_world () in
  let c = make_comp m "victim" in
  let delay = Time.of_seconds 0.12 in
  let rs = Reincarnation.create m ~restart_delay:delay () in
  Reincarnation.watch rs c ();
  Reincarnation.start rs;
  Alcotest.(check bool) "not restarting while healthy" false
    (Reincarnation.restarting rs c);
  ignore (Engine.schedule e 100 (fun () -> Reincarnation.kill rs c));
  ignore
    (Engine.schedule e (100 + (delay / 2)) (fun () ->
         Alcotest.(check bool) "inside the window" true
           (Reincarnation.restarting rs c);
         Reincarnation.kill rs c));
  Engine.run e ~until:(Time.of_seconds 1.0);
  Alcotest.(check bool) "window closed" false (Reincarnation.restarting rs c);
  Alcotest.(check bool) "alive at the end" true (Component.alive c);
  Alcotest.(check int) "second fault absorbed: one restart" 1
    (Reincarnation.restarts rs)

let test_fault_distribution_matches_table3 () =
  (* Over many draws, the component distribution approaches Table III's
     25/10/24/25/16. *)
  let rng = Rng.create 123 in
  let n = 20000 in
  let counts = Hashtbl.create 8 in
  List.iter
    (fun (inj : Fault_inject.injection) ->
      let k = Fault_inject.target_name inj.Fault_inject.target in
      Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k)))
    (Fault_inject.draw_many rng ~ndrv:3 ~runs:n);
  let frac k = float_of_int (Option.value ~default:0 (Hashtbl.find_opt counts k)) /. float_of_int n in
  let close k expected = abs_float (frac k -. expected) < 0.02 in
  Alcotest.(check bool) "tcp ~25%" true (close "TCP" 0.25);
  Alcotest.(check bool) "udp ~10%" true (close "UDP" 0.10);
  Alcotest.(check bool) "ip ~24%" true (close "IP" 0.24);
  Alcotest.(check bool) "pf ~25%" true (close "PF" 0.25);
  Alcotest.(check bool) "driver ~16%" true (close "Driver" 0.16)

let test_fault_effects_mostly_crashes () =
  let rng = Rng.create 9 in
  let injections = Fault_inject.draw_many rng ~ndrv:1 ~runs:5000 in
  let crashes =
    List.length
      (List.filter (fun i -> i.Fault_inject.effect = Fault_inject.Crash) injections)
  in
  let frac = float_of_int crashes /. 5000.0 in
  Alcotest.(check bool)
    (Printf.sprintf "~80%% plain crashes (got %.2f)" frac)
    true
    (frac > 0.70 && frac < 0.90);
  (* Misconfiguration only ever hits drivers. *)
  List.iter
    (fun (i : Fault_inject.injection) ->
      if i.Fault_inject.effect = Fault_inject.Misconfigure_device then
        match i.Fault_inject.target with
        | Fault_inject.T_drv _ -> ()
        | _ -> Alcotest.fail "misconfiguration on a non-driver")
    injections

let test_fault_drv_index_spread () =
  let rng = Rng.create 17 in
  let injections = Fault_inject.draw_many rng ~ndrv:5 ~runs:5000 in
  let seen = Hashtbl.create 5 in
  List.iter
    (fun (i : Fault_inject.injection) ->
      match i.Fault_inject.target with
      | Fault_inject.T_drv d -> Hashtbl.replace seen d ()
      | _ -> ())
    injections;
  Alcotest.(check int) "all driver instances get faults" 5 (Hashtbl.length seen)

let suite =
  [
    ("storage key-value semantics", `Quick, test_storage_kv);
    ("storage owner views", `Quick, test_storage_owner_view);
    ("storage crash loses everything", `Quick, test_storage_crash_loses_everything);
    ("reincarnation restarts crashes", `Quick, test_rs_restarts_crashed_server);
    ("heartbeats catch hangs", `Quick, test_rs_heartbeat_catches_hang);
    ("crash/recover/resubmit ordering", `Quick, test_rs_notification_order);
    ("double kill, single restart", `Quick, test_rs_double_kill_single_restart);
    ("hang exactly on a heartbeat boundary", `Quick, test_rs_hang_on_heartbeat_boundary);
    ("crash inside the restart window", `Quick, test_rs_crash_inside_restart_window);
    ("two components caught in one round", `Quick, test_rs_two_components_same_round);
    ("reincarnated callbacks compose", `Quick, test_rs_on_reincarnated_composes);
    ("labeled recovery steps and arming", `Quick,
      test_component_recovery_steps_and_arming);
    ("mid-recovery crash repeats recovery", `Quick,
      test_rs_mid_recovery_crash_repeats_recovery);
    ("storage export/import across incarnations", `Quick,
      test_storage_export_import_survives_surgery);
    ("restart window absorbs injected faults", `Quick,
      test_rs_restarting_window_absorbs_faults);
    ("fault draws match Table III", `Quick, test_fault_distribution_matches_table3);
    ("fault effects mostly crashes", `Quick, test_fault_effects_mostly_crashes);
    ("driver faults spread over instances", `Quick, test_fault_drv_index_spread);
  ]
