(* Tests for the native runtime: the no-silent-fallback argument
   guard, the per-domain event loop, and a bounded end-to-end run on
   real domains. *)

module Time = Newt_sim.Time
module Loop = Newt_runtime.Loop
module Native = Newt_runtime.Native

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let err ~recommended ?allow ~domains () =
  match
    Native.validate ~recommended ?allow_oversubscribe:allow ~domains ()
  with
  | Ok () -> None
  | Error e -> Some e

let test_validate_guards () =
  (* Fewer than two domains is never runnable — a channel needs a
     producer domain and a consumer domain. *)
  Alcotest.(check bool) "1 domain rejected" true
    (err ~recommended:8 ~domains:1 () <> None);
  Alcotest.(check bool) "1 domain rejected even when forced" true
    (err ~recommended:8 ~allow:true ~domains:1 () <> None);
  (* Exceeding the machine measures scheduler noise: refuse unless
     explicitly forced. *)
  Alcotest.(check bool) "over recommended rejected" true
    (err ~recommended:2 ~domains:4 () <> None);
  Alcotest.(check bool) "over recommended runs when forced" true
    (err ~recommended:2 ~allow:true ~domains:4 () = None);
  (* A 1-core machine refuses rather than silently simulating. *)
  Alcotest.(check bool) "recommended=1 rejected" true
    (err ~recommended:1 ~domains:2 () <> None);
  Alcotest.(check bool) "recommended=1 runs when forced" true
    (err ~recommended:1 ~allow:true ~domains:2 () = None);
  (* Sane configurations pass. *)
  Alcotest.(check bool) "2 of 8 accepted" true
    (err ~recommended:8 ~domains:2 () = None);
  Alcotest.(check bool) "8 of 8 accepted" true
    (err ~recommended:8 ~domains:8 () = None);
  (* Absurd counts are a mistake even when forced. *)
  Alcotest.(check bool) "32 domains rejected" true
    (err ~recommended:64 ~allow:true ~domains:32 () <> None)

let test_validate_error_names_the_remedy () =
  (* The guard must tell the operator how to proceed, and must make
     clear it will not fall back to simulation. *)
  match err ~recommended:1 ~domains:2 () with
  | None -> Alcotest.fail "expected a rejection on a 1-core machine"
  | Some msg ->
      Alcotest.(check bool) "names --allow-oversubscribe" true
        (contains msg "allow-oversubscribe");
      Alcotest.(check bool) "mentions it refuses to simulate" true
        (contains msg "simulat")

let test_loop_post_schedule_cancel_stop () =
  let t0 = Unix.gettimeofday () in
  let now () =
    int_of_float
      ((Unix.gettimeofday () -. t0) *. float_of_int Time.cycles_per_second)
  in
  let loop = Loop.create ~index:0 ~now () in
  let order = ref [] in
  Loop.post loop (fun () -> order := "posted" :: !order);
  let (_keep : unit -> unit) =
    Loop.schedule loop (Time.of_micros 200.) (fun () ->
        order := "timer" :: !order)
  in
  let cancel =
    Loop.schedule loop (Time.of_micros 500.) (fun () ->
        order := "cancelled" :: !order)
  in
  cancel ();
  let d = Domain.spawn (fun () -> Loop.run loop) in
  Loop.post loop (fun () -> order := "cross" :: !order);
  Unix.sleepf 0.05;
  Loop.request_stop loop;
  Domain.join d;
  Alcotest.(check bool) "no failure" true (Loop.failure loop = None);
  let ran = List.rev !order in
  Alcotest.(check bool) "pre-run post ran" true (List.mem "posted" ran);
  Alcotest.(check bool) "cross-domain post ran" true (List.mem "cross" ran);
  Alcotest.(check bool) "timer fired" true (List.mem "timer" ran);
  Alcotest.(check bool) "cancelled timer did not fire" true
    (not (List.mem "cancelled" ran));
  let s = Loop.stats loop in
  Alcotest.(check int) "one timer fire counted" 1 s.Loop.timer_fires

let test_loop_failure_captured () =
  let loop = Loop.create ~index:1 ~now:(fun () -> 0) () in
  Loop.post loop (fun () -> failwith "boom");
  let d = Domain.spawn (fun () -> Loop.run loop) in
  Domain.join d;
  match Loop.failure loop with
  | Some (Failure m) -> Alcotest.(check string) "exception kept" "boom" m
  | _ -> Alcotest.fail "loop failure not captured"

let test_native_bounded_run () =
  (* A short real run on 2 domains (time-sliced if the machine has one
     core — the stack's correctness must not depend on parallelism).
     Every byte the peer receives went through TCP → IP → PF → IP →
     driver → wire with real checksums on the far end. *)
  let r =
    Native.run { Native.default_config with domains = 2; seconds = 0.4 }
  in
  Alcotest.(check int) "peer saw no checksum failures" 0
    r.Native.checksum_failures;
  Alcotest.(check bool) "bulk TCP payload moved" true (r.Native.tcp_bytes > 0);
  Alcotest.(check bool) "split-stack ping path answered" true
    (r.Native.icmp_echoes > 0);
  Alcotest.(check int) "both domains reported" 2
    (List.length r.Native.loops);
  List.iter
    (fun (s : Native.ring_stat) ->
      Alcotest.(check int)
        (Printf.sprintf "ring %s dropped nothing" s.Native.ring)
        0 s.Native.dropped)
    r.Native.rings;
  (* The JSON emitter covers every ring and loop. *)
  let json = Native.json_of_result r in
  Alcotest.(check bool) "json mentions goodput" true
    (contains json "goodput_mbps")

let suite =
  [
    ("native validate: fallback guard", `Quick, test_validate_guards);
    ("native validate: error names the remedy", `Quick,
      test_validate_error_names_the_remedy);
    ("loop: post/schedule/cancel/stop", `Quick,
      test_loop_post_schedule_cancel_stop);
    ("loop: failure captured, not swallowed", `Quick,
      test_loop_failure_captured);
    ("native: bounded 2-domain run", `Slow, test_native_bounded_run);
  ]
