(* Tests for lib/scale: the shard map (determinism, symmetry, reverse
   port selection, rebalancing), the sharded stack's throughput scaling,
   the flow→shard affinity invariant, and per-shard crash recovery. *)

module Time = Newt_sim.Time
module Addr = Newt_net.Addr
module Pubsub = Newt_channels.Pubsub
module Rss = Newt_nic.Rss
module Mq = Newt_nic.Mq_e1000
module Ip_srv = Newt_stack.Ip_srv
module Sink = Newt_stack.Sink
module Apps = Newt_sockets.Apps
module Shard_map = Newt_scale.Shard_map
module S = Newt_scale.Sharded_stack
module E = Newt_core.Experiments

let ip = Addr.Ipv4.v

(* {2 Shard_map} *)

let test_shard_map_deterministic_symmetric () =
  let sm = Shard_map.create ~shards:4 () in
  let sm' = Shard_map.create ~shards:4 () in
  for i = 0 to 199 do
    let src = ip 10 0 0 (i mod 8) and dst = ip 10 0 1 2 in
    let sport = 49152 + i and dport = 5001 in
    let s = Shard_map.shard_of sm ~src ~sport ~dst ~dport in
    Alcotest.(check int) "same seed, same steering" s
      (Shard_map.shard_of sm' ~src ~sport ~dst ~dport);
    Alcotest.(check int) "symmetric in the endpoints" s
      (Shard_map.shard_of sm ~src:dst ~sport:dport ~dst:src ~dport:sport);
    Alcotest.(check bool) "in range" true (s >= 0 && s < 4)
  done

let test_shard_map_spreads () =
  let sm = Shard_map.create ~shards:4 () in
  let seen = Array.make 4 0 in
  for sport = 49152 to 49152 + 511 do
    let s =
      Shard_map.shard_of sm ~src:(ip 10 0 0 1) ~sport ~dst:(ip 10 0 0 2)
        ~dport:5001
    in
    seen.(s) <- seen.(s) + 1
  done;
  Array.iter
    (fun c -> Alcotest.(check bool) "every shard gets flows" true (c > 64))
    seen

let test_port_for_shard () =
  let sm = Shard_map.create ~shards:4 () in
  for shard = 0 to 3 do
    for _ = 1 to 50 do
      match
        Shard_map.port_for_shard sm ~shard ~src:(ip 10 0 0 1)
          ~dst:(ip 10 0 0 2) ~dst_port:5001 ()
      with
      | Error `Exhausted -> Alcotest.fail "port scan failed"
      | Ok sport ->
          Alcotest.(check bool) "ephemeral range" true
            (sport >= 49152 && sport < 65536);
          Alcotest.(check int) "hashes back to the asking shard" shard
            (Shard_map.shard_of sm ~src:(ip 10 0 0 1) ~sport
               ~dst:(ip 10 0 0 2) ~dport:5001)
    done
  done

let test_port_for_shard_exhaustion () =
  let sm = Shard_map.create ~shards:4 () in
  let src = ip 10 0 0 1 and dst = ip 10 0 0 2 in
  (* Claim every port the map could hand shard 0 for this destination;
     the next request must fail loudly instead of reusing one. *)
  let taken = Hashtbl.create 4096 in
  let rec drain n =
    match
      Shard_map.port_for_shard sm ~in_use:(Hashtbl.mem taken) ~shard:0 ~src
        ~dst ~dst_port:5001 ()
    with
    | Ok p ->
        Alcotest.(check bool) "no port handed out twice" false
          (Hashtbl.mem taken p);
        Hashtbl.replace taken p ();
        drain (n + 1)
    | Error `Exhausted -> n
  in
  let handed = drain 0 in
  Alcotest.(check bool) "a quarter-ish of the range served first" true
    (handed > 2048);
  (* Exhaustion is sticky while the ports stay bound... *)
  (match
     Shard_map.port_for_shard sm ~in_use:(Hashtbl.mem taken) ~shard:0 ~src
       ~dst ~dst_port:5001 ()
   with
  | Error `Exhausted -> ()
  | Ok _ -> Alcotest.fail "expected exhaustion");
  (* ... and one free port is found again even in a full range. *)
  let freed = 49152 + ((Hashtbl.hash dst * 7) mod 16384) in
  let freed =
    (* pick a port we actually handed to shard 0 *)
    if Hashtbl.mem taken freed then freed
    else Hashtbl.fold (fun p () _ -> p) taken freed
  in
  Hashtbl.remove taken freed;
  match
    Shard_map.port_for_shard sm ~in_use:(Hashtbl.mem taken) ~shard:0 ~src
      ~dst ~dst_port:5001 ()
  with
  | Ok p -> Alcotest.(check int) "the freed port is rediscovered" freed p
  | Error `Exhausted -> Alcotest.fail "freed port not found"

let test_imbalance () =
  Alcotest.(check (float 1e-9)) "balanced" 1.0
    (Shard_map.imbalance ~loads:[| 5.; 5.; 5.; 5. |]);
  Alcotest.(check (float 1e-9)) "empty is defined" 1.0
    (Shard_map.imbalance ~loads:[||]);
  Alcotest.(check (float 1e-9)) "all load on one shard" 4.0
    (Shard_map.imbalance ~loads:[| 8.; 0.; 0.; 0. |])

let test_rebalance_moves_buckets () =
  let sm = Shard_map.create ~shards:4 () in
  let moved = Shard_map.rebalance sm ~loads:[| 1000.; 10.; 10.; 10. |] in
  Alcotest.(check bool) "buckets moved" true (moved > 0);
  let table = Rss.table (Shard_map.rss sm) in
  let count q =
    Array.fold_left (fun acc x -> if x = q then acc + 1 else acc) 0 table
  in
  Alcotest.(check bool) "the hot shard donated buckets" true
    (count 0 < Array.length table / 4);
  Alcotest.(check bool) "every shard still owns buckets" true
    (count 0 > 0 && count 1 > 0 && count 2 > 0 && count 3 > 0);
  (* Balanced load: nothing to do. *)
  let sm2 = Shard_map.create ~shards:4 () in
  Alcotest.(check int) "balanced load moves nothing" 0
    (Shard_map.rebalance sm2 ~loads:[| 7.; 7.; 7.; 7. |])

(* {2 Throughput scaling (the tentpole's acceptance numbers)} *)

let test_scaling_curve () =
  let r = E.scaling_curve ~shard_counts:[ 1; 2; 4 ] ~flows:8 ~duration:0.2 () in
  match r.E.points with
  | [ p1; p2; p4 ] ->
      Alcotest.(check bool) "2 shards beat 1" true
        (p2.E.goodput_gbps > p1.E.goodput_gbps);
      Alcotest.(check bool) "4 shards beat 2" true
        (p4.E.goodput_gbps > p2.E.goodput_gbps);
      Alcotest.(check bool) "at least 2.5x at 4 shards" true
        (p4.E.goodput_gbps >= 2.5 *. p1.E.goodput_gbps);
      Alcotest.(check bool) "1 shard near the Table II ceiling" true
        (p1.E.goodput_gbps <= r.E.single_instance_gbps *. 1.05);
      List.iter
        (fun (p : E.scaling_point) ->
          Alcotest.(check int)
            (Printf.sprintf "affinity invariant at %d shards" p.E.shards)
            0 p.E.violations)
        [ p1; p2; p4 ];
      (* All four shards pulled their weight. *)
      Array.iter
        (fun (s : S.shard_stats) ->
          Alcotest.(check bool) "every shard sent segments" true
            (s.S.segs_out > 1000))
        p4.E.per_shard
  | _ -> Alcotest.fail "expected three points"

(* {2 Per-shard crash recovery} *)

let test_shard_crash_recovery () =
  let config = { S.default_config with S.shards = 2; link_gbps = 10.0 } in
  let s = S.create ~config () in
  let received = Array.make 2 0 in
  for i = 0 to 1 do
    Sink.sink_tcp (S.sink s) ~port:(5001 + i) ~on_bytes:(fun ~at:_ n ->
        received.(i) <- received.(i) + n)
  done;
  (* Two paced (non-saturating) flows; placement is round-robin so they
     land on distinct shards. *)
  let iperfs =
    Array.init 2 (fun i ->
        Apps.Iperf.start (S.machine s) ~sc:(S.sc s) ~app:(S.app s)
          ~dst:(S.sink_addr s) ~port:(5001 + i) ~write_size:1460
          ~pace:(Time.of_micros 100.) ~until:(Time.of_seconds 1.0) ())
  in
  S.at s (Time.of_seconds 0.2) (fun () -> S.kill_shard s 0);
  S.run s ~until:(Time.of_seconds 1.3);
  Alcotest.(check int) "killed shard restarted once" 1 (S.shard_restarts s 0);
  Alcotest.(check int) "other shard untouched" 0 (S.shard_restarts s 1);
  (* Which flow rode the killed shard is visible in the error counts. *)
  let crashed = if Apps.Iperf.errors iperfs.(0) > 0 then 0 else 1 in
  let surviving = 1 - crashed in
  Alcotest.(check bool) "exactly one flow saw the crash" true
    (Apps.Iperf.errors iperfs.(crashed) > 0
    && Apps.Iperf.errors iperfs.(surviving) = 0);
  (* Zero lost segments on the surviving shard: every byte written by
     its iperf arrived at the sink. *)
  Alcotest.(check int) "surviving flow lost nothing"
    (Apps.Iperf.bytes_sent iperfs.(surviving))
    received.(surviving);
  Alcotest.(check int) "no corruption on the wire" 0
    (Sink.checksum_failures (S.sink s));
  (* The crashed flow reconnected (onto the reincarnated shard) and
     made progress again. *)
  Alcotest.(check bool) "crashed flow reconnected" true
    (Apps.Iperf.connects iperfs.(crashed) >= 2);
  Alcotest.(check bool) "crashed flow resumed" true
    (received.(crashed) > 0);
  Alcotest.(check int) "affinity held across the crash" 0
    (S.steering_violations s);
  (* The device really did steer to both queues. *)
  let per_queue = Mq.rx_queue_packets (S.nic s) in
  Alcotest.(check bool) "both RX queues carried frames" true
    (per_queue.(0) > 0 && per_queue.(1) > 0)

(* {2 Replicated IP servers} *)

(* The directory encoding of an ARP binding (see Sharded_stack): the
   MAC rides the [chan_id] field as a 48-bit integer. *)
let mac_to_int m =
  Array.fold_left (fun acc o -> (acc lsl 8) lor o) 0 (Addr.Mac.to_octets m)

let test_ip_replication_lifts_plateau () =
  let r1 = E.scaling_curve ~shard_counts:[ 8 ] ~flows:8 ~duration:0.2 () in
  let r2 =
    E.scaling_curve ~shard_counts:[ 8 ] ~ip_replicas:2 ~flows:8 ~duration:0.2 ()
  in
  match (r1.E.points, r2.E.points) with
  | [ p1 ], [ p2 ] ->
      Alcotest.(check int) "two replicas ran" 2 p2.E.ip_replicas;
      Alcotest.(check bool)
        (Printf.sprintf
           "replicated IP beats the single-IP plateau (%.2f vs %.2f Gbps)"
           p2.E.goodput_gbps p1.E.goodput_gbps)
        true
        (p2.E.goodput_gbps > p1.E.goodput_gbps *. 1.3);
      Alcotest.(check int) "affinity invariant held (r=1)" 0 p1.E.violations;
      Alcotest.(check int) "affinity invariant held (r=2)" 0 p2.E.violations;
      Array.iter
        (fun (st : S.shard_stats) ->
          Alcotest.(check bool) "every shard pulled its weight" true
            (st.S.segs_out > 1000))
        p2.E.per_shard
  | _ -> Alcotest.fail "expected one point each"

let test_arp_learn_broadcast () =
  let config = { S.default_config with S.shards = 2; S.ip_replicas = 2 } in
  let s = S.create ~config () in
  let mac = Addr.Mac.of_index 77 in
  let addr = ip 10 0 0 99 in
  (* A binding announced under the shared prefix reaches every
     replica's cache through the live subscription. *)
  Pubsub.publish (S.directory s)
    ~key:(Printf.sprintf "arp.0.%s" (Addr.Ipv4.to_string addr))
    ~creator:(-1) ~chan_id:(mac_to_int mac);
  for k = 0 to 1 do
    match Ip_srv.arp_lookup (S.ip_replica s k) ~iface:0 addr with
    | Some m ->
        Alcotest.(check bool)
          (Printf.sprintf "replica %d converged" k)
          true (Addr.Mac.equal m mac)
    | None -> Alcotest.fail "replica cache did not converge"
  done;
  (* A reincarnated replica comes back with a flushed cache and
     re-warms it from the directory replay — no new ARP traffic. *)
  S.at s (Time.of_seconds 0.1) (fun () -> S.kill_ip_replica s 1);
  S.run s ~until:(Time.of_seconds 1.0);
  Alcotest.(check int) "replica restarted" 1 (S.ip_replica_restarts s 1);
  Alcotest.(check int) "sibling untouched" 0 (S.ip_replica_restarts s 0);
  (match Ip_srv.arp_lookup (S.ip_replica s 1) ~iface:0 addr with
  | Some m ->
      Alcotest.(check bool) "re-warmed after restart" true (Addr.Mac.equal m mac)
  | None -> Alcotest.fail "flushed cache was not re-warmed");
  match Ip_srv.arp_lookup (S.ip_replica s 1) ~iface:0 (S.sink_addr s) with
  | Some _ -> ()
  | None -> Alcotest.fail "static peer binding lost after restart"

let test_ip_replica_crash_isolation () =
  (* Four paced flows, one per shard; shards 0/2 are served by replica
     0 and shards 1/3 by replica 1. Killing replica 1 must not cost the
     other replica's flows a single byte. *)
  let config =
    { S.default_config with S.shards = 4; S.ip_replicas = 2; link_gbps = 10.0 }
  in
  let s = S.create ~config () in
  let received = Array.make 4 0 in
  for i = 0 to 3 do
    Sink.sink_tcp (S.sink s) ~port:(5001 + i) ~on_bytes:(fun ~at:_ n ->
        received.(i) <- received.(i) + n)
  done;
  let iperfs =
    Array.init 4 (fun i ->
        Apps.Iperf.start (S.machine s) ~sc:(S.sc s) ~app:(S.app s)
          ~dst:(S.sink_addr s) ~port:(5001 + i) ~write_size:1460
          ~pace:(Time.of_micros 100.) ~until:(Time.of_seconds 1.0) ())
  in
  let at_kill = Array.make 4 0 in
  S.at s (Time.of_seconds 0.2) (fun () ->
      Array.blit received 0 at_kill 0 4;
      S.kill_ip_replica s 1);
  S.run s ~until:(Time.of_seconds 1.3);
  Alcotest.(check int) "killed replica restarted once" 1 (S.ip_replica_restarts s 1);
  Alcotest.(check int) "other replica untouched" 0 (S.ip_replica_restarts s 0);
  for i = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "transport shard %d never crashed" i)
      0 (S.shard_restarts s i)
  done;
  (* The surviving replica's flows (even shards) lost nothing at all. *)
  List.iter
    (fun i ->
      Alcotest.(check int)
        (Printf.sprintf "flow on shard %d lost nothing" i)
        (Apps.Iperf.bytes_sent iperfs.(i))
        received.(i))
    [ 0; 2 ];
  (* The dead replica's flows resumed once it reincarnated. *)
  List.iter
    (fun i ->
      Alcotest.(check bool)
        (Printf.sprintf "flow on shard %d resumed" i)
        true
        (received.(i) > at_kill.(i)))
    [ 1; 3 ];
  Alcotest.(check int) "no corruption on the wire" 0
    (Sink.checksum_failures (S.sink s));
  Alcotest.(check int) "affinity held across the crash" 0
    (S.steering_violations s)

(* {2 Sharded packet filter} *)

module Rule = Newt_pf.Rule
module Conntrack = Newt_pf.Conntrack
module Pf_engine = Newt_pf.Pf_engine
module Pf_srv = Newt_stack.Pf_srv
module Replica_set = Newt_scale.Replica_set

(* The PF plane's partition function: the shared flow hash reduced to
   the PF member count (must agree with the stack's own steering). *)
let pf_owner s (f : Conntrack.flow) =
  Shard_map.shard_of (S.shard_map s) ~src:f.Conntrack.local_ip
    ~sport:f.Conntrack.local_port ~dst:f.Conntrack.remote_ip
    ~dport:f.Conntrack.remote_port
  mod S.pf_shard_count s

let pf_conntrack s j = Pf_engine.conntrack (Pf_srv.engine_of (S.pf_shard s j))

let test_planes_cover_every_replica_set () =
  let config =
    {
      S.default_config with
      S.shards = 2;
      ip_replicas = 2;
      pf_shards = 2;
      pf_rules = Some [ Rule.pass_all ];
    }
  in
  let s = S.create ~config () in
  let planes = S.planes s in
  List.iter
    (fun (name, members) ->
      match
        List.find_opt
          (fun (p : Replica_set.plane) -> p.Replica_set.plane_name = name)
          planes
      with
      | Some p ->
          Alcotest.(check int)
            (Printf.sprintf "%s plane size" name)
            members p.Replica_set.members
      | None -> Alcotest.failf "plane %s missing" name)
    [ ("tcp", 2); ("ip", 2); ("pf", 2) ];
  (* The whole-stack imbalance/rebalance accounting is defined (and a
     no-op) before any load exists on any plane. *)
  Alcotest.(check (float 1e-9)) "idle stack is balanced" 1.0
    (S.imbalance_ratio s);
  Alcotest.(check int) "idle stack moves no buckets" 0 (S.rebalance s)

let test_pf_sharding_lifts_plateau () =
  let r1 =
    E.scaling_curve ~shard_counts:[ 8 ] ~ip_replicas:4 ~pf_shards:1 ~flows:8
      ~duration:0.2 ()
  in
  let r2 =
    E.scaling_curve ~shard_counts:[ 8 ] ~ip_replicas:4 ~pf_shards:2 ~flows:8
      ~duration:0.2 ()
  in
  match (r1.E.points, r2.E.points) with
  | [ p1 ], [ p2 ] ->
      Alcotest.(check int) "two pf shards ran" 2 p2.E.pf_shards;
      Alcotest.(check bool)
        (Printf.sprintf
           "sharded PF beats the single-PF plateau (%.2f vs %.2f Gbps)"
           p2.E.goodput_gbps p1.E.goodput_gbps)
        true
        (p2.E.goodput_gbps > p1.E.goodput_gbps *. 1.15);
      Alcotest.(check int) "affinity invariant held (pf=1)" 0 p1.E.violations;
      Alcotest.(check int) "affinity invariant held (pf=2)" 0 p2.E.violations;
      Alcotest.(check int) "one counter block per pf shard" 2
        (Array.length p2.E.per_pf_shard);
      Array.iter
        (fun (st : S.pf_shard_stats) ->
          Alcotest.(check bool) "every pf shard issued verdicts" true
            (st.S.verdicts > 1000);
          Alcotest.(check bool) "every pf shard tracked flows" true
            (st.S.entries > 0))
        p2.E.per_pf_shard
  | _ -> Alcotest.fail "expected one point each"

let test_pf_shard_crash_isolation () =
  (* Four paced flows over 2 transport shards and 2 PF shards (flow →
     PF shard is the same hash, so shards 0/1 each filter two flows).
     Killing PF shard 0 must hold only its own flows' packets — losing
     none — and its recovery must re-track exactly its own conntrack
     slice while the sibling's entries survive untouched. *)
  let config =
    {
      S.default_config with
      S.shards = 2;
      pf_shards = 2;
      pf_rules = Some [ Rule.pass_all ];
      link_gbps = 10.0;
    }
  in
  let s = S.create ~config () in
  let received = Array.make 4 0 in
  for i = 0 to 3 do
    Sink.sink_tcp (S.sink s) ~port:(5001 + i) ~on_bytes:(fun ~at:_ n ->
        received.(i) <- received.(i) + n)
  done;
  let iperfs =
    Array.init 4 (fun i ->
        Apps.Iperf.start (S.machine s) ~sc:(S.sc s) ~app:(S.app s)
          ~dst:(S.sink_addr s) ~port:(5001 + i) ~write_size:1460
          ~pace:(Time.of_micros 100.) ~until:(Time.of_seconds 1.0) ())
  in
  let sibling_at_kill = ref [] in
  S.at s (Time.of_seconds 0.3) (fun () ->
      sibling_at_kill :=
        List.map (fun (f, _, _) -> f) (Conntrack.export (pf_conntrack s 1));
      S.kill_pf_shard s 0);
  S.run s ~until:(Time.of_seconds 1.3);
  Alcotest.(check int) "killed pf shard restarted once" 1
    (S.pf_shard_restarts s 0);
  Alcotest.(check int) "sibling pf shard untouched" 0 (S.pf_shard_restarts s 1);
  for i = 0 to 1 do
    Alcotest.(check int)
      (Printf.sprintf "transport shard %d never crashed" i)
      0 (S.shard_restarts s i)
  done;
  (* A PF crash loses no packets anywhere: IP holds the unanswered
     verdicts and resubmits them, so every flow — including the two
     filtered by the dead shard — delivers every byte, and no
     connection is reset. *)
  for i = 0 to 3 do
    Alcotest.(check int)
      (Printf.sprintf "flow %d lost nothing" i)
      (Apps.Iperf.bytes_sent iperfs.(i))
      received.(i);
    Alcotest.(check int)
      (Printf.sprintf "flow %d saw no error" i)
      0
      (Apps.Iperf.errors iperfs.(i))
  done;
  Alcotest.(check int) "no corruption on the wire" 0
    (Sink.checksum_failures (S.sink s));
  Alcotest.(check int) "affinity held across the crash" 0
    (S.steering_violations s);
  (* The sibling's partition survived the crash entry for entry... *)
  Alcotest.(check bool) "sibling tracked flows before the kill" true
    (!sibling_at_kill <> []);
  List.iter
    (fun f ->
      Alcotest.(check bool) "sibling entry survived" true
        (Conntrack.mem (pf_conntrack s 1) f))
    !sibling_at_kill;
  (* ...and each shard's table holds exactly its own slice of the flow
     space: recovery re-tracked the dead shard's flows (from its
     snapshot and the transports) and nothing foreign. *)
  let check_partition j =
    let entries =
      List.map (fun (f, _, _) -> f) (Conntrack.export (pf_conntrack s j))
    in
    Alcotest.(check bool)
      (Printf.sprintf "pf shard %d re-tracked its flows" j)
      true (entries <> []);
    List.iter
      (fun f ->
        Alcotest.(check int)
          (Printf.sprintf "pf shard %d holds only owned flows" j)
          j (pf_owner s f))
      entries
  in
  check_partition 0;
  check_partition 1

let suite =
  [
    ( "shard map is deterministic and symmetric",
      `Quick,
      test_shard_map_deterministic_symmetric );
    ("shard map spreads flows over shards", `Quick, test_shard_map_spreads);
    ("port_for_shard hashes back to the shard", `Quick, test_port_for_shard);
    ( "port_for_shard exhaustion is an explicit error",
      `Quick,
      test_port_for_shard_exhaustion );
    ("imbalance ratio", `Quick, test_imbalance);
    ("rebalance moves buckets toward idle shards", `Quick, test_rebalance_moves_buckets);
    ("goodput scales with shard count", `Slow, test_scaling_curve);
    ("one shard crashes, the rest keep serving", `Slow, test_shard_crash_recovery);
    ("replicated IP lifts the single-IP plateau", `Slow, test_ip_replication_lifts_plateau);
    ("ARP learn-broadcast converges and survives restart", `Quick, test_arp_learn_broadcast);
    ("one IP replica crashes, the other's shards keep serving", `Slow, test_ip_replica_crash_isolation);
    ("every replica set reports as a plane", `Quick, test_planes_cover_every_replica_set);
    ("sharded PF lifts the single-PF plateau", `Slow, test_pf_sharding_lifts_plateau);
    ("one PF shard crashes, conntrack partitions survive", `Slow, test_pf_shard_crash_isolation);
  ]
