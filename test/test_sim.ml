(* Tests for the discrete-event engine, RNG, stats and series. *)

module Time = Newt_sim.Time
module Eventq = Newt_sim.Eventq
module Engine = Newt_sim.Engine
module Rng = Newt_sim.Rng
module Stats = Newt_sim.Stats
module Series = Newt_sim.Series

let test_eventq_order () =
  let q = Eventq.create () in
  Eventq.push q 30 "c";
  Eventq.push q 10 "a";
  Eventq.push q 20 "b";
  let pop () = match Eventq.pop q with Some (_, x) -> x | None -> "?" in
  Alcotest.(check string) "first" "a" (pop ());
  Alcotest.(check string) "second" "b" (pop ());
  Alcotest.(check string) "third" "c" (pop ());
  Alcotest.(check bool) "empty" true (Eventq.is_empty q)

let test_eventq_fifo_ties () =
  let q = Eventq.create () in
  for i = 0 to 99 do
    Eventq.push q 5 i
  done;
  for i = 0 to 99 do
    match Eventq.pop q with
    | Some (at, v) ->
        Alcotest.(check int) "time" 5 at;
        Alcotest.(check int) "fifo order among ties" i v
    | None -> Alcotest.fail "queue exhausted early"
  done

let test_eventq_many () =
  let q = Eventq.create () in
  let rng = Rng.create 7 in
  let n = 2000 in
  for _ = 1 to n do
    Eventq.push q (Rng.int rng 100000) ()
  done;
  let last = ref (-1) in
  let count = ref 0 in
  let rec drain () =
    match Eventq.pop q with
    | None -> ()
    | Some (at, ()) ->
        Alcotest.(check bool) "non-decreasing" true (at >= !last);
        last := at;
        incr count;
        drain ()
  in
  drain ();
  Alcotest.(check int) "all popped" n !count

let test_engine_runs_in_order () =
  let e = Engine.create () in
  let log = ref [] in
  ignore (Engine.schedule e 100 (fun () -> log := "b" :: !log));
  ignore (Engine.schedule e 50 (fun () -> log := "a" :: !log));
  ignore (Engine.schedule e 150 (fun () -> log := "c" :: !log));
  Engine.run e;
  Alcotest.(check (list string)) "order" [ "a"; "b"; "c" ] (List.rev !log);
  Alcotest.(check int) "clock at last event" 150 (Engine.now e)

let test_engine_cancel () =
  let e = Engine.create () in
  let fired = ref false in
  let h = Engine.schedule e 10 (fun () -> fired := true) in
  Engine.cancel h;
  Engine.run e;
  Alcotest.(check bool) "cancelled event did not fire" false !fired;
  Alcotest.(check int) "no pending" 0 (Engine.pending e)

let test_engine_until () =
  let e = Engine.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    ignore (Engine.schedule e (i * 100) (fun () -> incr count))
  done;
  Engine.run ~until:450 e;
  Alcotest.(check int) "only events up to 450" 4 !count;
  Alcotest.(check int) "clock stopped at until" 450 (Engine.now e);
  Engine.run e;
  Alcotest.(check int) "remaining events fire" 10 !count

let test_engine_nested_schedule () =
  let e = Engine.create () in
  let hits = ref [] in
  ignore
    (Engine.schedule e 10 (fun () ->
         hits := Engine.now e :: !hits;
         ignore (Engine.schedule e 5 (fun () -> hits := Engine.now e :: !hits))));
  Engine.run e;
  Alcotest.(check (list int)) "nested event times" [ 10; 15 ] (List.rev !hits)

let test_rng_deterministic () =
  let a = Rng.create 123 and b = Rng.create 123 in
  let xs = List.init 50 (fun _ -> Rng.int a 1000) in
  let ys = List.init 50 (fun _ -> Rng.int b 1000) in
  Alcotest.(check (list int)) "same seed, same stream" xs ys

let test_rng_split_independent () =
  let a = Rng.create 1 in
  let b = Rng.split a in
  let xs = List.init 20 (fun _ -> Rng.int a 1000000) in
  let ys = List.init 20 (fun _ -> Rng.int b 1000000) in
  Alcotest.(check bool) "split streams differ" true (xs <> ys)

let test_rng_weighted () =
  let rng = Rng.create 99 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 10000 do
    let v = Rng.weighted rng [ (25, "tcp"); (10, "udp"); (65, "rest") ] in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let get k = Option.value ~default:0 (Hashtbl.find_opt counts k) in
  Alcotest.(check bool) "tcp ~ 25%" true (abs (get "tcp" - 2500) < 300);
  Alcotest.(check bool) "udp ~ 10%" true (abs (get "udp" - 1000) < 250);
  Alcotest.(check bool) "rest ~ 65%" true (abs (get "rest" - 6500) < 400)

let test_rng_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 7 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 7);
    let f = Rng.float rng 2.5 in
    Alcotest.(check bool) "float in range" true (f >= 0.0 && f < 2.5)
  done

let test_time_conversions () =
  Alcotest.(check int) "1 second" Time.cycles_per_second (Time.of_seconds 1.0);
  Alcotest.(check int) "1 us" 1900 (Time.of_micros 1.0);
  let close a b = abs_float (a -. b) < 1e-9 in
  Alcotest.(check bool) "roundtrip" true
    (close (Time.to_seconds (Time.of_seconds 3.25)) 3.25)

let test_stats_counters () =
  let s = Stats.create () in
  Stats.incr s "a";
  Stats.incr s "a";
  Stats.add s "b" 5;
  Stats.set_max s "m" 3;
  Stats.set_max s "m" 9;
  Stats.set_max s "m" 4;
  Alcotest.(check int) "incr" 2 (Stats.get s "a");
  Alcotest.(check int) "add" 5 (Stats.get s "b");
  Alcotest.(check int) "max" 9 (Stats.get s "m");
  Alcotest.(check int) "untouched" 0 (Stats.get s "zzz");
  Alcotest.(check (list (pair string int)))
    "counters sorted" [ ("a", 2); ("b", 5); ("m", 9) ] (Stats.counters s)

let test_stats_samples () =
  let s = Stats.create () in
  List.iter (Stats.observe s "lat") [ 1.0; 2.0; 3.0; 4.0 ];
  (match Stats.mean s "lat" with
  | Some m -> Alcotest.(check (float 1e-9)) "mean" 2.5 m
  | None -> Alcotest.fail "expected mean");
  Alcotest.(check int) "count" 4 (Stats.count s "lat");
  Alcotest.(check bool) "no samples" true (Stats.mean s "none" = None)

let test_series_binning () =
  let bin = Time.of_seconds 0.1 in
  let s = Series.create ~bin_width:bin in
  Series.add s 0 100;
  Series.add s (bin - 1) 50;
  Series.add s bin 10;
  Series.add s (3 * bin) 7;
  let bins = Series.bins s () in
  Alcotest.(check int) "bin count" 4 (Array.length bins);
  Alcotest.(check int) "bin 0 sum" 150 (snd bins.(0));
  Alcotest.(check int) "bin 1 sum" 10 (snd bins.(1));
  Alcotest.(check int) "bin 2 empty" 0 (snd bins.(2));
  Alcotest.(check int) "bin 3 sum" 7 (snd bins.(3))

let test_series_mbps () =
  let bin = Time.of_seconds 0.1 in
  let s = Series.create ~bin_width:bin in
  (* 1 MB in one 100ms bin = 80 Mbps. *)
  Series.add s 10 1_000_000;
  let m = Series.mbps s () in
  Alcotest.(check (float 0.5)) "mbps" 80.0 (snd m.(0))

let test_stats_percentile () =
  let st = Stats.create () in
  (* Unsorted on purpose: percentile sorts on demand. *)
  List.iter (Stats.observe st "lat") [ 5.0; 1.0; 4.0; 2.0; 3.0 ];
  let p x =
    match Stats.percentile st "lat" x with
    | Some v -> v
    | None -> Alcotest.fail "expected samples"
  in
  Alcotest.(check (float 1e-9)) "p0 is the minimum" 1.0 (p 0.0);
  Alcotest.(check (float 1e-9)) "p100 is the maximum" 5.0 (p 100.0);
  Alcotest.(check (float 1e-9)) "median" 3.0 (p 50.0);
  Alcotest.(check (float 1e-9)) "clamped above" 5.0 (p 150.0);
  Alcotest.(check (float 1e-9)) "clamped below" 1.0 (p (-3.0));
  Alcotest.(check (option (float 1e-9))) "no samples" None
    (Stats.percentile st "other" 50.0)

let test_stats_percentile_single_sample () =
  let st = Stats.create () in
  Stats.observe st "one" 7.5;
  List.iter
    (fun p ->
      Alcotest.(check (option (float 1e-9))) "single sample at any p"
        (Some 7.5)
        (Stats.percentile st "one" p))
    [ 0.0; 33.3; 50.0; 99.9; 100.0 ]

(* A deterministic pseudo-random stream (LCG) — no wall-clock seed, no
   Random state shared with the engine. *)
let lcg_stream n =
  let s = ref 123456789 in
  Array.init n (fun _ ->
      s := ((!s * 1103515245) + 12345) land 0x3FFFFFFF;
      1.0 +. float_of_int (!s mod 1_000_000))

let exact_percentile sorted p =
  let n = Array.length sorted in
  let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
  sorted.(max 0 (min (n - 1) (rank - 1)))

let test_hist_agrees_with_exact_percentiles () =
  (* The histogram trades a sort per query for bucketed values: every
     quantile must land within the documented 1/64 of the exact
     sorted-series answer, across three orders of magnitude. *)
  let samples = lcg_stream 50_000 in
  let h = Newt_sim.Stats.Hist.create () in
  Array.iter (Newt_sim.Stats.Hist.record h) samples;
  let sorted = Array.copy samples in
  Array.sort compare sorted;
  Alcotest.(check int) "count" 50_000 (Newt_sim.Stats.Hist.count h);
  List.iter
    (fun p ->
      let exact = exact_percentile sorted p in
      let approx =
        match Newt_sim.Stats.Hist.percentile h p with
        | Some v -> v
        | None -> Alcotest.fail "expected samples"
      in
      Alcotest.(check bool)
        (Printf.sprintf "p%.1f within 1/64 (exact %.0f, hist %.0f)" p exact
           approx)
        true
        (abs_float (approx -. exact) <= exact /. 32.0))
    [ 1.0; 25.0; 50.0; 90.0; 99.0; 99.9; 99.99 ];
  (* The extremes are exact, not bucket edges. *)
  Alcotest.(check (option (float 1e-9))) "p0 is the true minimum"
    (Some sorted.(0))
    (Newt_sim.Stats.Hist.percentile h 0.0);
  Alcotest.(check (option (float 1e-9))) "p100 is the true maximum"
    (Some sorted.(49_999))
    (Newt_sim.Stats.Hist.percentile h 100.0)

let test_hist_merge_adds_counts () =
  let h1 = Newt_sim.Stats.Hist.create () in
  let h2 = Newt_sim.Stats.Hist.create () in
  for i = 1 to 1000 do
    Newt_sim.Stats.Hist.record h1 (float_of_int i)
  done;
  for i = 1001 to 2000 do
    Newt_sim.Stats.Hist.record h2 (float_of_int i)
  done;
  Newt_sim.Stats.Hist.merge ~into:h1 h2;
  Alcotest.(check int) "merged count" 2000 (Newt_sim.Stats.Hist.count h1);
  let p50 = Option.get (Newt_sim.Stats.Hist.percentile h1 50.0) in
  Alcotest.(check bool)
    (Printf.sprintf "merged median near 1000 (got %.0f)" p50)
    true
    (abs_float (p50 -. 1000.0) <= 1000.0 /. 32.0);
  Alcotest.(check (option (float 1e-9))) "merged max" (Some 2000.0)
    (Newt_sim.Stats.Hist.percentile h1 100.0)

let test_stats_series_migrates_to_hist () =
  (* Past the exact threshold a named series silently becomes a
     histogram: same API, same answers (to bucket precision), no sort
     per query on a big series. *)
  let st = Stats.create () in
  for i = 1 to 5000 do
    Stats.observe st "lat" (float_of_int i)
  done;
  Alcotest.(check int) "count unaffected by migration" 5000
    (Stats.count st "lat");
  let p50 = Option.get (Stats.percentile st "lat" 50.0) in
  Alcotest.(check bool)
    (Printf.sprintf "median within 1/64 after migration (got %.0f)" p50)
    true
    (abs_float (p50 -. 2500.0) <= 2500.0 /. 32.0);
  Alcotest.(check (option (float 1e-9))) "max exact" (Some 5000.0)
    (Stats.percentile st "lat" 100.0);
  Alcotest.(check (option (float 1e-9))) "min exact" (Some 1.0)
    (Stats.percentile st "lat" 0.0)

let test_trace_bounded () =
  let t = Newt_sim.Trace.create ~capacity:3 () in
  for i = 1 to 5 do
    Newt_sim.Trace.record t ~at:i ~subsystem:"x" (string_of_int i)
  done;
  let es = Newt_sim.Trace.entries t in
  Alcotest.(check int) "bounded" 3 (List.length es);
  Alcotest.(check string) "oldest kept is 3" "3"
    (match es with e :: _ -> e.Newt_sim.Trace.message | [] -> "?")

let suite =
  [
    ("eventq pops in time order", `Quick, test_eventq_order);
    ("eventq breaks ties FIFO", `Quick, test_eventq_fifo_ties);
    ("eventq random stress stays sorted", `Quick, test_eventq_many);
    ("engine runs events in order", `Quick, test_engine_runs_in_order);
    ("engine cancel suppresses events", `Quick, test_engine_cancel);
    ("engine run ~until stops the clock", `Quick, test_engine_until);
    ("engine nested scheduling", `Quick, test_engine_nested_schedule);
    ("rng is deterministic per seed", `Quick, test_rng_deterministic);
    ("rng split gives independent stream", `Quick, test_rng_split_independent);
    ("rng weighted respects weights", `Quick, test_rng_weighted);
    ("rng draws stay in bounds", `Quick, test_rng_bounds);
    ("time unit conversions", `Quick, test_time_conversions);
    ("stats counters", `Quick, test_stats_counters);
    ("stats distributions", `Quick, test_stats_samples);
    ("stats percentile bounds and clamping", `Quick, test_stats_percentile);
    ("stats percentile single sample", `Quick, test_stats_percentile_single_sample);
    ( "hist percentiles agree with exact sort",
      `Quick,
      test_hist_agrees_with_exact_percentiles );
    ("hist merge adds shard counts", `Quick, test_hist_merge_adds_counts);
    ( "stats series migrates to hist past the threshold",
      `Quick,
      test_stats_series_migrates_to_hist );
    ("series bins by time", `Quick, test_series_binning);
    ("series converts to Mbps", `Quick, test_series_mbps);
    ("trace log is bounded", `Quick, test_trace_bounded);
  ]
