(* Behavioural tests for the TCP engine: two instances wired
   back-to-back through the discrete-event engine, with real wire
   encoding on every segment and a configurable drop filter. *)

module Engine = Newt_sim.Engine
module Time = Newt_sim.Time
module Rng = Newt_sim.Rng
module Addr = Newt_net.Addr
module Tcp = Newt_net.Tcp
module Tcp_wire = Newt_net.Tcp_wire

let ip_a = Addr.Ipv4.v 10 0 0 1
let ip_b = Addr.Ipv4.v 10 0 0 2

type world = {
  engine : Engine.t;
  tcp_a : Tcp.t;
  tcp_b : Tcp.t;
  (* [filter ~from hdr payload_len] decides whether a segment is dropped. *)
  mutable filter : from:[ `A | `B ] -> Tcp_wire.header -> int -> bool;
  (* Adversarial wire conditions. *)
  mutable mangle : Bytes.t -> unit;  (* corrupt raw bytes in place *)
  mutable jitter : unit -> Time.cycles;  (* extra per-segment latency *)
  mutable duplicate : unit -> bool;  (* deliver the segment twice *)
  mutable segs_seen : (Tcp_wire.header * int) list;  (* newest first *)
}

let make_world ?(latency_us = 50.0) ?config_a ?config_b () =
  let engine = Engine.create ~seed:7 () in
  let rng = Rng.split (Engine.rng engine) in
  let latency = Time.of_micros latency_us in
  let world = ref None in
  let env ~me ~peer_input =
    {
      Tcp.now = (fun () -> Engine.now engine);
      set_timer =
        (fun delay f ->
          let h = Engine.schedule engine delay f in
          fun () -> Engine.cancel h);
      emit =
        (fun ~src ~dst hdr ~payload ->
          let w = Option.get !world in
          w.segs_seen <- (hdr, Bytes.length payload) :: w.segs_seen;
          if not (w.filter ~from:me hdr (Bytes.length payload)) then begin
            (* Encode to real bytes here, decode at the far end: every
               segment on the "wire" exercises the codec. *)
            let raw = Tcp_wire.encode ~src ~dst hdr ~payload in
            w.mangle raw;
            let deliver () =
              ignore
                (Engine.schedule engine
                   (latency + w.jitter ())
                   (fun () ->
                     (* A corrupted segment fails its checksum and is
                        dropped, as a real NIC/stack would. *)
                     match Tcp_wire.decode ~src ~dst raw with
                     | Some (hdr', payload') ->
                         peer_input ~src ~dst hdr' ~payload:payload'
                     | None -> ()))
            in
            deliver ();
            if w.duplicate () then deliver ()
          end);
      random = (fun bound -> Rng.int rng bound);
    }
  in
  let tcp_b_cell = ref None in
  let tcp_a =
    Tcp.create
      ?config:config_a
      (env ~me:`A ~peer_input:(fun ~src ~dst hdr ~payload ->
           Tcp.input (Option.get !tcp_b_cell) ~src ~dst hdr ~payload))
  in
  let tcp_b =
    Tcp.create
      ?config:config_b
      (env ~me:`B ~peer_input:(fun ~src ~dst hdr ~payload ->
           Tcp.input tcp_a ~src ~dst hdr ~payload))
  in
  tcp_b_cell := Some tcp_b;
  let w =
    {
      engine;
      tcp_a;
      tcp_b;
      filter = (fun ~from:_ _ _ -> false);
      mangle = (fun _ -> ());
      jitter = (fun () -> 0);
      duplicate = (fun () -> false);
      segs_seen = [];
    }
  in
  world := Some w;
  w

(* A sink application: accepts one connection on port 80 and accumulates
   everything it receives. *)
let sink_app w ~port =
  let received = Buffer.create 4096 in
  let eof = ref false in
  Tcp.listen w.tcp_b ~port ~on_accept:(fun pcb ->
      Tcp.set_handler pcb (fun ev ->
          match ev with
          | Tcp.Readable ->
              Buffer.add_bytes received (Tcp.recv pcb ~max:1_000_000);
              if Tcp.recv_eof pcb then begin
                eof := true;
                Tcp.close pcb
              end
          | Tcp.Connected | Tcp.Accepted | Tcp.Writable | Tcp.Closed_normally
          | Tcp.Reset ->
              ()));
  (received, eof)

(* A source application: connects and streams [total] patterned bytes. *)
let source_app w ~port ~total =
  let pattern i = Char.chr (((i * 31) + (i / 251)) land 0xff) in
  let sent = ref 0 in
  let connected = ref false in
  let closed = ref false in
  let pcb = Tcp.connect w.tcp_a ~src:ip_a ~dst:ip_b ~dst_port:port () in
  let pump pcb =
    let continue = ref true in
    while !sent < total && !continue do
      let n = min 8192 (total - !sent) in
      let chunk = Bytes.init n (fun i -> pattern (!sent + i)) in
      let accepted = Tcp.send pcb chunk in
      sent := !sent + accepted;
      if accepted < n then continue := false
    done;
    if !sent >= total then Tcp.close pcb
  in
  Tcp.set_handler pcb (fun ev ->
      match ev with
      | Tcp.Connected ->
          connected := true;
          pump pcb
      | Tcp.Writable -> if !sent < total then pump pcb
      | Tcp.Closed_normally -> closed := true
      | Tcp.Accepted | Tcp.Readable | Tcp.Reset -> ());
  (pcb, sent, connected, closed)

let expected_stream total =
  String.init total (fun i -> Char.chr (((i * 31) + (i / 251)) land 0xff))

let test_handshake () =
  let w = make_world () in
  let accepted = ref false in
  Tcp.listen w.tcp_b ~port:80 ~on_accept:(fun _ -> accepted := true);
  let connected = ref false in
  let pcb = Tcp.connect w.tcp_a ~src:ip_a ~dst:ip_b ~dst_port:80 () in
  Tcp.set_handler pcb (fun ev -> if ev = Tcp.Connected then connected := true);
  Engine.run ~until:(Time.of_seconds 1.0) w.engine;
  Alcotest.(check bool) "client connected" true !connected;
  Alcotest.(check bool) "server accepted" true !accepted;
  Alcotest.(check bool) "client established" true (Tcp.state pcb = Tcp.Established);
  Alcotest.(check int) "negotiated mss" 1460 (Tcp.effective_mss pcb)

let test_bulk_transfer () =
  let w = make_world () in
  let total = 1_000_000 in
  let received, eof = sink_app w ~port:80 in
  let _pcb, sent, _, closed = source_app w ~port:80 ~total in
  Engine.run ~until:(Time.of_seconds 30.0) w.engine;
  Alcotest.(check int) "all bytes pushed" total !sent;
  Alcotest.(check int) "all bytes received" total (Buffer.length received);
  Alcotest.(check bool) "stream intact" true
    (String.equal (Buffer.contents received) (expected_stream total));
  Alcotest.(check bool) "eof delivered" true !eof;
  Alcotest.(check bool) "sender saw clean close" true !closed;
  Alcotest.(check int) "no retransmits on lossless link" 0 (Tcp.stats w.tcp_a).Tcp.retransmits

let test_connection_close_states () =
  let w = make_world () in
  let received, _eof = sink_app w ~port:80 in
  let pcb, _, _, _ = source_app w ~port:80 ~total:100 in
  Engine.run ~until:(Time.of_seconds 10.0) w.engine;
  ignore received;
  Alcotest.(check bool) "client fully closed" true (Tcp.state pcb = Tcp.Closed);
  Alcotest.(check int) "client table empty" 0 (Tcp.connection_count w.tcp_a);
  Alcotest.(check int) "server table empty" 0 (Tcp.connection_count w.tcp_b)

let test_rst_on_refused_port () =
  let w = make_world () in
  let got_reset = ref false in
  let pcb = Tcp.connect w.tcp_a ~src:ip_a ~dst:ip_b ~dst_port:9999 () in
  Tcp.set_handler pcb (fun ev -> if ev = Tcp.Reset then got_reset := true);
  Engine.run ~until:(Time.of_seconds 1.0) w.engine;
  Alcotest.(check bool) "connection refused" true !got_reset;
  Alcotest.(check bool) "pcb closed" true (Tcp.state pcb = Tcp.Closed)

let test_loss_recovery () =
  let w = make_world () in
  let total = 400_000 in
  (* Drop 2% of data-bearing segments, deterministically. *)
  let drop_rng = Rng.create 99 in
  w.filter <-
    (fun ~from hdr len ->
      ignore hdr;
      from = `A && len > 0 && Rng.int drop_rng 100 < 2);
  let received, _eof = sink_app w ~port:80 in
  let _pcb, sent, _, _ = source_app w ~port:80 ~total in
  Engine.run ~until:(Time.of_seconds 120.0) w.engine;
  Alcotest.(check int) "all bytes pushed" total !sent;
  Alcotest.(check bool) "stream intact despite loss" true
    (String.equal (Buffer.contents received) (expected_stream total));
  Alcotest.(check bool) "retransmissions happened" true
    ((Tcp.stats w.tcp_a).Tcp.retransmits > 0)

let test_fast_retransmit_on_single_loss () =
  let w = make_world () in
  let total = 200_000 in
  (* Drop exactly one data segment mid-stream. *)
  let dropped = ref false in
  w.filter <-
    (fun ~from hdr len ->
      if from = `A && len > 0 && (not !dropped) && hdr.Tcp_wire.seq land 0xffff > 30000
      then begin
        dropped := true;
        true
      end
      else false);
  let received, _eof = sink_app w ~port:80 in
  let _pcb, _, _, _ = source_app w ~port:80 ~total in
  let t0_retx = (Tcp.stats w.tcp_a).Tcp.retransmits in
  Engine.run ~until:(Time.of_seconds 30.0) w.engine;
  Alcotest.(check bool) "one segment was dropped" true !dropped;
  Alcotest.(check bool) "stream recovered" true
    (String.equal (Buffer.contents received) (expected_stream total));
  let retx = (Tcp.stats w.tcp_a).Tcp.retransmits - t0_retx in
  Alcotest.(check bool) "recovered with few retransmits (fast rtx)" true
    (retx >= 1 && retx <= 3)

let test_segments_respect_mss () =
  let w = make_world () in
  let received, _eof = sink_app w ~port:80 in
  let _pcb, _, _, _ = source_app w ~port:80 ~total:100_000 in
  Engine.run ~until:(Time.of_seconds 10.0) w.engine;
  ignore received;
  List.iter
    (fun (_, len) ->
      Alcotest.(check bool) "segment <= mss" true (len <= 1460))
    w.segs_seen

let test_tso_emits_oversized_segments () =
  let config_a = { Tcp.default_config with Tcp.tso_segment = 65535 } in
  let w = make_world ~config_a () in
  let received, _eof = sink_app w ~port:80 in
  let _pcb, _, _, _ = source_app w ~port:80 ~total:500_000 in
  Engine.run ~until:(Time.of_seconds 10.0) w.engine;
  (* Without a TSO-splitting NIC between them, the receiver still copes:
     segments bigger than the MSS arrive and are consumed whole. *)
  Alcotest.(check int) "bytes received" 500_000 (Buffer.length received);
  Alcotest.(check bool) "some oversized segments were emitted" true
    (List.exists (fun (_, len) -> len > 1460) w.segs_seen)

let test_receiver_window_bounds_flight () =
  (* A tiny receive buffer on B must throttle A's in-flight data. *)
  let config_b = { Tcp.default_config with Tcp.rcv_buf = 8 * 1024; use_wscale = false } in
  let w = make_world ~config_b () in
  let received = Buffer.create 4096 in
  (* A slow reader: drains at most 2 KiB per readable event. *)
  Tcp.listen w.tcp_b ~port:80 ~on_accept:(fun pcb ->
      Tcp.set_handler pcb (fun ev ->
          match ev with
          | Tcp.Readable -> Buffer.add_bytes received (Tcp.recv pcb ~max:2048)
          | _ -> ()));
  let _pcb, _, _, _ = source_app w ~port:80 ~total:100_000 in
  Engine.run ~until:(Time.of_seconds 60.0) w.engine;
  (* Every data segment must have fit in the 8 KiB window. *)
  List.iter
    (fun (hdr, len) ->
      if len > 0 && not hdr.Tcp_wire.flags.Tcp_wire.syn then
        Alcotest.(check bool) "segment within window" true (len <= 8 * 1024))
    w.segs_seen;
  Alcotest.(check bool) "transfer made progress" true (Buffer.length received > 50_000)

let test_bidirectional_transfer () =
  let w = make_world () in
  let a_received = Buffer.create 1024 and b_received = Buffer.create 1024 in
  Tcp.listen w.tcp_b ~port:80 ~on_accept:(fun pcb ->
      (* Echo-ish server: sends its own 50 KB, receives client's. *)
      let to_send = ref 50_000 in
      let pump pcb =
        while !to_send > 0 && Tcp.send_space pcb > 0 do
          let n = min 4096 !to_send in
          let accepted = Tcp.send pcb (Bytes.make n 'S') in
          to_send := !to_send - accepted;
          if accepted = 0 then to_send := max !to_send 1 (* break below *)
        done
      in
      Tcp.set_handler pcb (fun ev ->
          match ev with
          | Tcp.Readable -> Buffer.add_bytes b_received (Tcp.recv pcb ~max:1_000_000)
          | Tcp.Writable -> pump pcb
          | _ -> ());
      pump pcb);
  let to_send = ref 50_000 in
  let pcb = Tcp.connect w.tcp_a ~src:ip_a ~dst:ip_b ~dst_port:80 () in
  let pump pcb =
    let progress = ref true in
    while !to_send > 0 && !progress do
      let n = min 4096 !to_send in
      let accepted = Tcp.send pcb (Bytes.make n 'C') in
      to_send := !to_send - accepted;
      if accepted = 0 then progress := false
    done
  in
  Tcp.set_handler pcb (fun ev ->
      match ev with
      | Tcp.Connected -> pump pcb
      | Tcp.Writable -> pump pcb
      | Tcp.Readable -> Buffer.add_bytes a_received (Tcp.recv pcb ~max:1_000_000)
      | _ -> ());
  Engine.run ~until:(Time.of_seconds 30.0) w.engine;
  Alcotest.(check int) "client got server bytes" 50_000 (Buffer.length a_received);
  Alcotest.(check int) "server got client bytes" 50_000 (Buffer.length b_received);
  Alcotest.(check bool) "server bytes are S" true
    (String.for_all (Char.equal 'S') (Buffer.contents a_received));
  Alcotest.(check bool) "client bytes are C" true
    (String.for_all (Char.equal 'C') (Buffer.contents b_received))

let test_srtt_estimation () =
  let w = make_world ~latency_us:500.0 () in
  let received, _eof = sink_app w ~port:80 in
  let pcb, _, _, _ = source_app w ~port:80 ~total:500_000 in
  Engine.run ~until:(Time.of_seconds 20.0) w.engine;
  ignore received;
  match Tcp.srtt pcb with
  | Some srtt ->
      let rtt_cycles = Time.of_micros 1000.0 in
      Alcotest.(check bool)
        (Printf.sprintf "srtt %d within 3x of true rtt %d" srtt rtt_cycles)
        true
        (srtt > rtt_cycles / 3 && srtt < 3 * rtt_cycles)
  | None -> Alcotest.fail "no rtt estimate after bulk transfer"

let test_shutdown_all_kills_connections () =
  let w = make_world () in
  let received, _eof = sink_app w ~port:80 in
  let pcb, _, _, _ = source_app w ~port:80 ~total:10_000_000 in
  let got_reset = ref false in
  (* Stop mid-transfer: with ~100 us RTT a 10 MB stream takes ~4 ms. *)
  Engine.run ~until:(Time.of_micros 2000.0) w.engine;
  ignore received;
  Alcotest.(check bool) "established mid-transfer" true (Tcp.state pcb = Tcp.Established);
  (* The TCP server on B "crashes". *)
  Tcp.shutdown_all w.tcp_b;
  Alcotest.(check int) "b table empty" 0 (Tcp.connection_count w.tcp_b);
  Alcotest.(check (list int)) "b listeners gone" [] (Tcp.listening_ports w.tcp_b);
  (* A keeps transmitting; B's fresh instance answers with RST. *)
  Tcp.set_handler pcb (fun ev -> if ev = Tcp.Reset then got_reset := true);
  Engine.run ~until:(Time.of_seconds 5.0) w.engine;
  Alcotest.(check bool) "sender connection reset" true !got_reset

let test_listening_state_is_serializable () =
  let w = make_world () in
  Tcp.listen w.tcp_b ~port:22 ~on_accept:(fun _ -> ());
  Tcp.listen w.tcp_b ~port:80 ~on_accept:(fun _ -> ());
  Alcotest.(check (list int)) "ports" [ 22; 80 ] (Tcp.listening_ports w.tcp_b);
  (* Crash and restore, as the TCP server does via the storage server. *)
  let saved = Tcp.listening_ports w.tcp_b in
  Tcp.shutdown_all w.tcp_b;
  List.iter (fun port -> Tcp.listen w.tcp_b ~port ~on_accept:(fun _ -> ())) saved;
  Alcotest.(check (list int)) "ports restored" [ 22; 80 ] (Tcp.listening_ports w.tcp_b);
  (* And the restored listener accepts connections. *)
  let connected = ref false in
  let pcb = Tcp.connect w.tcp_a ~src:ip_a ~dst:ip_b ~dst_port:22 () in
  Tcp.set_handler pcb (fun ev -> if ev = Tcp.Connected then connected := true);
  Engine.run ~until:(Time.of_seconds 1.0) w.engine;
  Alcotest.(check bool) "reconnect after restart" true !connected

let test_established_tuples_for_conntrack () =
  let w = make_world () in
  let received, _eof = sink_app w ~port:80 in
  let _pcb, _, _, _ = source_app w ~port:80 ~total:10_000_000 in
  Engine.run ~until:(Time.of_micros 2000.0) w.engine;
  ignore received;
  (match Tcp.established_tuples w.tcp_a with
  | [ (lip, _, rip, rport) ] ->
      Alcotest.(check bool) "local ip" true (Addr.Ipv4.equal lip ip_a);
      Alcotest.(check bool) "remote ip" true (Addr.Ipv4.equal rip ip_b);
      Alcotest.(check int) "remote port" 80 rport
  | l -> Alcotest.fail (Printf.sprintf "expected 1 tuple, got %d" (List.length l)))

let test_duplicate_listen_rejected () =
  let w = make_world () in
  Tcp.listen w.tcp_b ~port:80 ~on_accept:(fun _ -> ());
  Alcotest.check_raises "double bind" (Invalid_argument "Tcp.listen: port 80 already bound")
    (fun () -> Tcp.listen w.tcp_b ~port:80 ~on_accept:(fun _ -> ()))

let test_zero_window_probe_recovers_lost_update () =
  (* The receiver's window closes; its reopening window-update ACK is
     lost. Only the persist timer (zero-window probe) can unstick the
     sender — RFC 1122's deadlock scenario. *)
  let config_b = { Tcp.default_config with Tcp.rcv_buf = 4096; use_wscale = false } in
  let w = make_world ~config_b () in
  let window_closed = ref false and update_dropped = ref false in
  w.filter <-
    (fun ~from hdr len ->
      if from = `B && len = 0 && not hdr.Tcp_wire.flags.Tcp_wire.syn then begin
        if hdr.Tcp_wire.window = 0 then window_closed := true;
        if !window_closed && (not !update_dropped) && hdr.Tcp_wire.window > 0 then begin
          (* The reopening update: lose it. *)
          update_dropped := true;
          true
        end
        else false
      end
      else false);
  let received = Buffer.create 4096 in
  let server_pcb = ref None in
  Tcp.listen w.tcp_b ~port:80 ~on_accept:(fun pcb ->
      server_pcb := Some pcb;
      (* The server application does not read at first. *)
      Tcp.set_handler pcb (fun _ -> ()));
  let _pcb, sent, _, _ = source_app w ~port:80 ~total:32_768 in
  (* Let the window fill and close. *)
  Engine.run ~until:(Time.of_seconds 2.0) w.engine;
  Alcotest.(check bool) "window closed" true !window_closed;
  Alcotest.(check bool) "sender stalled below total" true (!sent < 32_768 || Buffer.length received = 0);
  (* Now the app drains; the update gets dropped; the probe must save us. *)
  (match !server_pcb with
  | Some pcb ->
      Tcp.set_handler pcb (fun ev ->
          if ev = Tcp.Readable then
            Buffer.add_bytes received (Tcp.recv pcb ~max:1_000_000));
      Buffer.add_bytes received (Tcp.recv pcb ~max:1_000_000)
  | None -> Alcotest.fail "no server pcb");
  Engine.run ~until:(Time.of_seconds 90.0) w.engine;
  Alcotest.(check bool) "window update was dropped" true !update_dropped;
  Alcotest.(check int) "all data eventually delivered" 32_768 (Buffer.length received);
  Alcotest.(check bool) "stream intact" true
    (String.equal (Buffer.contents received) (expected_stream 32_768))

let test_abort_sends_rst () =
  let w = make_world () in
  let server_reset = ref false in
  Tcp.listen w.tcp_b ~port:80 ~on_accept:(fun pcb ->
      Tcp.set_handler pcb (fun ev -> if ev = Tcp.Reset then server_reset := true));
  let pcb = Tcp.connect w.tcp_a ~src:ip_a ~dst:ip_b ~dst_port:80 () in
  Tcp.set_handler pcb (fun ev ->
      if ev = Tcp.Connected then Tcp.abort pcb);
  Engine.run ~until:(Time.of_seconds 2.0) w.engine;
  Alcotest.(check bool) "peer saw RST" true !server_reset;
  Alcotest.(check int) "a table empty" 0 (Tcp.connection_count w.tcp_a)

(* {2 Adversarial wire conditions (property tests)} *)

let adversarial_transfer ~mangle ~jitter ~duplicate ~total seed =
  let w = make_world () in
  let rng = Rng.create seed in
  w.mangle <- mangle rng;
  w.jitter <- jitter rng;
  w.duplicate <- duplicate rng;
  let received, _eof = sink_app w ~port:80 in
  let _pcb, sent, _, _ = source_app w ~port:80 ~total in
  Engine.run ~until:(Time.of_seconds 240.0) w.engine;
  (!sent, Buffer.contents received)

let qtest name gen f = QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count:8 ~name gen f)

let test_random_corruption =
  qtest "random bit flips never corrupt the stream"
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let total = 120_000 in
      let mangle rng raw =
        (* Flip a bit in ~3% of segments. *)
        if Rng.int rng 100 < 3 then begin
          let pos = Rng.int rng (Bytes.length raw) in
          Bytes.set raw pos (Char.chr (Char.code (Bytes.get raw pos) lxor 0x10))
        end
      in
      let sent, got =
        adversarial_transfer
          ~mangle
          ~jitter:(fun _ () -> 0)
          ~duplicate:(fun _ () -> false)
          ~total seed
      in
      (* Everything pushed arrives, intact, in order. *)
      sent = total && String.equal got (expected_stream total))

let test_random_reordering =
  qtest "random reordering never corrupts the stream"
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let total = 120_000 in
      let jitter rng () = Rng.int rng (Time.of_micros 400.0) in
      let sent, got =
        adversarial_transfer
          ~mangle:(fun _ _ -> ())
          ~jitter
          ~duplicate:(fun _ () -> false)
          ~total seed
      in
      sent = total && String.equal got (expected_stream total))

let test_random_duplication =
  qtest "random duplication never corrupts the stream"
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let total = 120_000 in
      let duplicate rng () = Rng.int rng 100 < 10 in
      let sent, got =
        adversarial_transfer
          ~mangle:(fun _ _ -> ())
          ~jitter:(fun _ () -> 0)
          ~duplicate
          ~total seed
      in
      sent = total && String.equal got (expected_stream total))

let test_combined_hostile_wire =
  qtest "corruption + loss + reordering + duplication together"
    QCheck2.Gen.(int_range 1 10_000)
    (fun seed ->
      let total = 80_000 in
      let w = make_world () in
      let rng = Rng.create seed in
      let drop_rng = Rng.split rng in
      w.filter <-
        (fun ~from _ len -> from = `A && len > 0 && Rng.int drop_rng 100 < 2);
      w.mangle <-
        (fun raw ->
          if Rng.int rng 100 < 2 then begin
            let pos = Rng.int rng (Bytes.length raw) in
            Bytes.set raw pos (Char.chr (Char.code (Bytes.get raw pos) lxor 0x01))
          end);
      w.jitter <- (fun () -> Rng.int rng (Time.of_micros 300.0));
      w.duplicate <- (fun () -> Rng.int rng 100 < 5);
      let received, _eof = sink_app w ~port:80 in
      let _pcb, sent, _, _ = source_app w ~port:80 ~total in
      Engine.run ~until:(Time.of_seconds 240.0) w.engine;
      !sent = total && String.equal (Buffer.contents received) (expected_stream total))

let test_simultaneous_close () =
  (* Both ends close at the same moment: FIN crosses FIN; both sides
     traverse CLOSING and reach CLOSED. *)
  let w = make_world () in
  let server_pcb = ref None in
  Tcp.listen w.tcp_b ~port:80 ~on_accept:(fun pcb -> server_pcb := Some pcb);
  let pcb = Tcp.connect w.tcp_a ~src:ip_a ~dst:ip_b ~dst_port:80 () in
  Engine.run ~until:(Time.of_seconds 0.5) w.engine;
  (match !server_pcb with
  | Some sp ->
      (* Close both before either FIN can arrive. *)
      Tcp.close pcb;
      Tcp.close sp
  | None -> Alcotest.fail "not accepted");
  Engine.run ~until:(Time.of_seconds 10.0) w.engine;
  Alcotest.(check bool) "client closed" true (Tcp.state pcb = Tcp.Closed);
  (match !server_pcb with
  | Some sp -> Alcotest.(check bool) "server closed" true (Tcp.state sp = Tcp.Closed)
  | None -> ());
  Alcotest.(check int) "a table empty" 0 (Tcp.connection_count w.tcp_a);
  Alcotest.(check int) "b table empty" 0 (Tcp.connection_count w.tcp_b)

let test_half_close_data_after_fin () =
  (* A sends FIN; B keeps sending data afterwards; A receives it all. *)
  let w = make_world () in
  let b_pcb = ref None in
  Tcp.listen w.tcp_b ~port:80 ~on_accept:(fun pcb -> b_pcb := Some pcb);
  let got = Buffer.create 64 in
  let pcb = Tcp.connect w.tcp_a ~src:ip_a ~dst:ip_b ~dst_port:80 () in
  Tcp.set_handler pcb (fun ev ->
      match ev with
      | Tcp.Connected -> Tcp.close pcb (* immediate half-close *)
      | Tcp.Readable -> Buffer.add_bytes got (Tcp.recv pcb ~max:10_000)
      | _ -> ());
  Engine.run ~until:(Time.of_seconds 0.5) w.engine;
  (match !b_pcb with
  | Some sp ->
      Alcotest.(check bool) "server in CLOSE_WAIT" true (Tcp.state sp = Tcp.Close_wait);
      ignore (Tcp.send sp (Bytes.of_string "after-your-fin"));
      Tcp.close sp
  | None -> Alcotest.fail "not accepted");
  Engine.run ~until:(Time.of_seconds 10.0) w.engine;
  Alcotest.(check string) "data delivered after our FIN" "after-your-fin"
    (Buffer.contents got);
  Alcotest.(check bool) "fully closed" true (Tcp.state pcb = Tcp.Closed)

let test_time_wait_reaped_after_2msl () =
  (* Churn regression: TIME_WAIT must actually end after 2×MSL, or at
     tens of thousands of connections per second the connection table
     fills with corpses and the ephemeral range runs dry. *)
  let config = { Tcp.default_config with Tcp.msl = Time.of_seconds 0.05 } in
  let w = make_world ~config_a:config ~config_b:config () in
  Tcp.listen w.tcp_b ~port:80 ~on_accept:(fun pcb ->
      Tcp.set_handler pcb (fun ev ->
          match ev with
          | Tcp.Readable ->
              ignore (Tcp.recv pcb ~max:64);
              if Tcp.recv_eof pcb then Tcp.close pcb
          | _ -> ()));
  let pcb = Tcp.connect w.tcp_a ~src:ip_a ~dst:ip_b ~dst_port:80 () in
  Tcp.set_handler pcb (fun ev -> if ev = Tcp.Connected then Tcp.close pcb);
  (* Established and actively closed well within one MSL... *)
  Engine.run ~until:(Time.of_seconds 0.04) w.engine;
  Alcotest.(check bool) "active closer parks in TIME_WAIT" true
    (Tcp.state pcb = Tcp.Time_wait);
  Alcotest.(check int) "the corpse still occupies the table" 1
    (Tcp.connection_count w.tcp_a);
  (* The [port_in_use] probe — what Tcp_srv's port selector consults —
     must agree: the four-tuple is taken while the corpse sits there. *)
  let _, local_port = Tcp.local_addr pcb in
  let tuple_in_use () =
    Tcp.port_in_use w.tcp_a ~local_ip:ip_a ~port:local_port ~remote_ip:ip_b
      ~remote_port:80
  in
  Alcotest.(check bool) "port_in_use sees the TIME_WAIT tuple" true
    (tuple_in_use ());
  (* ...and reaped once 2×MSL has passed. *)
  Engine.run ~until:(Time.of_seconds 0.25) w.engine;
  Alcotest.(check bool) "reaped after 2 MSL" true (Tcp.state pcb = Tcp.Closed);
  Alcotest.(check int) "client table empty again" 0
    (Tcp.connection_count w.tcp_a);
  Alcotest.(check bool) "port_in_use agrees the tuple is free again" false
    (tuple_in_use ())

let test_ephemeral_port_reuse_at_churn_rates () =
  (* More connects than the whole 16384-port ephemeral range: every
     four-tuple is reused at least once. Only works because TIME_WAIT
     corpses are reaped on time — were they not, [Tcp.connect] would
     run out of ports partway through ("Tcp: out of ephemeral ports"). *)
  let config = { Tcp.default_config with Tcp.msl = Time.of_micros 500.0 } in
  let w = make_world ~latency_us:5.0 ~config_a:config ~config_b:config () in
  Tcp.listen w.tcp_b ~port:80 ~on_accept:(fun pcb ->
      Tcp.set_handler pcb (fun ev ->
          match ev with
          | Tcp.Readable ->
              ignore (Tcp.recv pcb ~max:64);
              if Tcp.recv_eof pcb then Tcp.close pcb
          | _ -> ()));
  let n = 17_000 in
  let completed = ref 0 in
  let rec spawn i =
    if i < n then begin
      let pcb = Tcp.connect w.tcp_a ~src:ip_a ~dst:ip_b ~dst_port:80 () in
      Tcp.set_handler pcb (fun ev ->
          if ev = Tcp.Connected then begin
            incr completed;
            Tcp.close pcb
          end);
      ignore
        (Engine.schedule w.engine (Time.of_micros 30.0) (fun () ->
             spawn (i + 1)))
    end
  in
  spawn 0;
  Engine.run ~until:(Time.of_seconds 1.0) w.engine;
  Alcotest.(check int) "every connect found a recycled port" n !completed;
  Alcotest.(check bool) "client table stays bounded" true
    (Tcp.connection_count w.tcp_a < 200)

(* {2 The conformance checker riding the rare close paths}

   [Newt_verify.Tcpfsm] judges every hook event these worlds emit. The
   rare paths — simultaneous close, a lost final ACK, a RST landing in
   TIME_WAIT — are exactly where a hand-maintained rule table drifts
   from the engine, so each must come out clean; the sabotage modes
   must each come out dirty with the right check name. *)

module Tcpfsm = Newt_verify.Tcpfsm
module Report = Newt_verify.Report

let with_fsm f =
  Tcpfsm.install ();
  Tcpfsm.reset ();
  Fun.protect ~finally:Tcpfsm.uninstall f

let fsm_clean label =
  Alcotest.(check (list string))
    label []
    (List.map (fun v -> v.Report.detail) (Tcpfsm.violations ()));
  Alcotest.(check bool) (label ^ ": segments judged") true (Tcpfsm.segment_count () > 0);
  Alcotest.(check bool) (label ^ ": transitions judged") true
    (Tcpfsm.transition_count () > 0)

let fsm_checks () = List.map (fun v -> v.Report.check) (Tcpfsm.violations ())

let test_fsm_simultaneous_close () =
  with_fsm @@ fun () ->
  let w = make_world () in
  let server_pcb = ref None in
  Tcp.listen w.tcp_b ~port:80 ~on_accept:(fun pcb -> server_pcb := Some pcb);
  let pcb = Tcp.connect w.tcp_a ~src:ip_a ~dst:ip_b ~dst_port:80 () in
  Engine.run ~until:(Time.of_seconds 0.5) w.engine;
  let sp =
    match !server_pcb with Some sp -> sp | None -> Alcotest.fail "not accepted"
  in
  Tcp.close pcb;
  Tcp.close sp;
  (* Both FINs are in flight and neither acknowledges the other's:
     each side must pass through CLOSING on its way out. *)
  Engine.run ~until:(Time.of_seconds 0.5 + Time.of_micros 80.0) w.engine;
  Alcotest.(check bool) "client traverses CLOSING" true
    (Tcp.state pcb = Tcp.Closing);
  Alcotest.(check bool) "server traverses CLOSING" true
    (Tcp.state sp = Tcp.Closing);
  Engine.run ~until:(Time.of_seconds 10.0) w.engine;
  Alcotest.(check bool) "both closed" true
    (Tcp.state pcb = Tcp.Closed && Tcp.state sp = Tcp.Closed);
  fsm_clean "simultaneous close is conformant"

let test_fsm_last_ack_retransmission () =
  with_fsm @@ fun () ->
  let w = make_world () in
  let server_pcb = ref None in
  Tcp.listen w.tcp_b ~port:80 ~on_accept:(fun pcb ->
      server_pcb := Some pcb;
      Tcp.set_handler pcb (fun ev ->
          match ev with
          | Tcp.Readable ->
              ignore (Tcp.recv pcb ~max:64);
              if Tcp.recv_eof pcb then Tcp.close pcb
          | _ -> ()));
  let pcb = Tcp.connect w.tcp_a ~src:ip_a ~dst:ip_b ~dst_port:80 () in
  Tcp.set_handler pcb (fun ev -> if ev = Tcp.Connected then Tcp.close pcb);
  (* Swallow the client's final ACK while the server sits in LAST_ACK:
     the server must retransmit its FIN from LAST_ACK — a legal tx
     under the table — and still reach CLOSED on the re-ACK. *)
  let dropped = ref false in
  w.filter <-
    (fun ~from hdr len ->
      match !server_pcb with
      | Some sp
        when from = `A
             && (not !dropped)
             && Tcp.state sp = Tcp.Last_ack
             && len = 0
             && not hdr.Tcp_wire.flags.Tcp_wire.fin
             && not hdr.Tcp_wire.flags.Tcp_wire.syn
             && not hdr.Tcp_wire.flags.Tcp_wire.rst ->
          dropped := true;
          true
      | _ -> false);
  Engine.run ~until:(Time.of_seconds 10.0) w.engine;
  Alcotest.(check bool) "the final ACK was dropped once" true !dropped;
  let sp = Option.get !server_pcb in
  Alcotest.(check bool) "server reached CLOSED anyway" true
    (Tcp.state sp = Tcp.Closed);
  Alcotest.(check bool) "server retransmitted from LAST_ACK" true
    ((Tcp.stats w.tcp_b).Tcp.retransmits >= 1);
  Alcotest.(check bool) "client reached CLOSED" true (Tcp.state pcb = Tcp.Closed);
  fsm_clean "LAST_ACK retransmission is conformant"

let test_fsm_rst_in_time_wait () =
  with_fsm @@ fun () ->
  let w = make_world () in
  Tcp.listen w.tcp_b ~port:80 ~on_accept:(fun pcb ->
      Tcp.set_handler pcb (fun ev ->
          match ev with
          | Tcp.Readable ->
              ignore (Tcp.recv pcb ~max:64);
              if Tcp.recv_eof pcb then Tcp.close pcb
          | _ -> ()));
  let pcb = Tcp.connect w.tcp_a ~src:ip_a ~dst:ip_b ~dst_port:80 () in
  Tcp.set_handler pcb (fun ev -> if ev = Tcp.Connected then Tcp.close pcb);
  Engine.run ~until:(Time.of_seconds 0.5) w.engine;
  Alcotest.(check bool) "active closer parks in TIME_WAIT" true
    (Tcp.state pcb = Tcp.Time_wait);
  (* An in-window RST assassinates the TIME_WAIT corpse on the spot —
     no 2-MSL wait — and the table must agree it is a legal exit. *)
  let _, local_port = Tcp.local_addr pcb in
  let rst =
    {
      Tcp_wire.src_port = 80;
      dst_port = local_port;
      seq = Tcp.rcv_next pcb;
      ack = 0;
      flags = Tcp_wire.flag_rst;
      window = 0;
      mss = None;
      wscale = None;
    }
  in
  Tcp.input w.tcp_a ~src:ip_b ~dst:ip_a rst ~payload:Bytes.empty;
  Alcotest.(check bool) "TIME_WAIT assassinated immediately" true
    (Tcp.state pcb = Tcp.Closed);
  Alcotest.(check int) "corpse gone from the table" 0
    (Tcp.connection_count w.tcp_a);
  fsm_clean "RST in TIME_WAIT is conformant"

let test_fsm_flags_ack_from_closed_sabotage () =
  with_fsm @@ fun () ->
  let w = make_world () in
  Tcp.set_sabotage w.tcp_b (Some Tcp.Ack_from_closed);
  (* Nothing listens on 81: the engine must RST; the sabotage ACKs
     instead, which the checker pins as ack-from-wrong-state. *)
  let _pcb = Tcp.connect w.tcp_a ~src:ip_a ~dst:ip_b ~dst_port:81 () in
  Engine.run ~until:(Time.of_seconds 0.2) w.engine;
  Alcotest.(check bool) "checker flags the bare ACK from CLOSED" true
    (List.mem "ack-from-wrong-state" (fsm_checks ()))

let test_fsm_flags_resurrected_pcb () =
  with_fsm @@ fun () ->
  let w = make_world () in
  (* A PCB materializing in ESTABLISHED with no handshake — the
     stale-connection crash bug of Table I, in miniature. *)
  Tcp.resurrect w.tcp_b [ (ip_b, 80, ip_a, 40_000) ];
  Alcotest.(check bool) "checker flags CLOSED -> ESTABLISHED" true
    (List.mem "illegal-transition" (fsm_checks ()));
  Alcotest.(check bool) "a counterexample trace is attached" true
    (Tcpfsm.trace () <> [])

let suite =
  [
    ("three-way handshake", `Quick, test_handshake);
    ("bulk transfer 1MB lossless", `Quick, test_bulk_transfer);
    ("orderly close reaches CLOSED both sides", `Quick, test_connection_close_states);
    ("RST on connection to closed port", `Quick, test_rst_on_refused_port);
    ("recovery from 2% segment loss", `Quick, test_loss_recovery);
    ("fast retransmit on a single loss", `Quick, test_fast_retransmit_on_single_loss);
    ("segments respect the MSS", `Quick, test_segments_respect_mss);
    ("TSO emits oversized segments", `Quick, test_tso_emits_oversized_segments);
    ("receiver window bounds flight", `Quick, test_receiver_window_bounds_flight);
    ("bidirectional transfer", `Quick, test_bidirectional_transfer);
    ("srtt estimation tracks link latency", `Quick, test_srtt_estimation);
    ("tcp server crash resets connections", `Quick, test_shutdown_all_kills_connections);
    ("listening sockets serialize and restore", `Quick, test_listening_state_is_serializable);
    ("established tuples exported for conntrack", `Quick, test_established_tuples_for_conntrack);
    ("duplicate listen rejected", `Quick, test_duplicate_listen_rejected);
    ( "zero-window probe recovers a lost update",
      `Quick,
      test_zero_window_probe_recovers_lost_update );
    ("abort sends RST", `Quick, test_abort_sends_rst);
    ("simultaneous close", `Quick, test_simultaneous_close);
    ("data flows after a half-close", `Quick, test_half_close_data_after_fin);
    ("TIME_WAIT reaped after 2 MSL", `Quick, test_time_wait_reaped_after_2msl);
    ( "ephemeral ports recycle at churn rates",
      `Quick,
      test_ephemeral_port_reuse_at_churn_rates );
    ("fsm checker: simultaneous close", `Quick, test_fsm_simultaneous_close);
    ( "fsm checker: LAST_ACK retransmission",
      `Quick,
      test_fsm_last_ack_retransmission );
    ("fsm checker: RST in TIME_WAIT", `Quick, test_fsm_rst_in_time_wait);
    ( "fsm checker flags ACK from CLOSED",
      `Quick,
      test_fsm_flags_ack_from_closed_sabotage );
    ( "fsm checker flags a resurrected PCB",
      `Quick,
      test_fsm_flags_resurrected_pcb );
    test_random_corruption;
    test_random_reordering;
    test_random_duplication;
    test_combined_hostile_wire;
  ]
