(* Tests for the stack verifier: the static channel-graph checker over
   synthetic (seeded-broken) topologies and all shipped configurations,
   and the pool-ownership sanitizer over both real runs and staged
   violations. *)

module Engine = Newt_sim.Engine
module Machine = Newt_hw.Machine
module Sim_chan = Newt_channels.Sim_chan
module Pool = Newt_channels.Pool
module Pubsub = Newt_channels.Pubsub
module Hook = Newt_channels.Hook
module Component = Newt_stack.Component
module Proc = Newt_stack.Proc
module Msg = Newt_stack.Msg
module E = Newt_core.Experiments
module Report = Newt_verify.Report
module Static = Newt_verify.Static
module Sanitizer = Newt_verify.Sanitizer
module Protocol = Newt_verify.Protocol
module Mcheck = Newt_verify.Mcheck

(* A little world builder: components on dedicated cores, wired by
   hand into whatever (broken) topology a test needs. *)
let make_world () =
  let e = Engine.create () in
  (e, Machine.create e)

let make_comp m name =
  let core = Machine.add_dedicated_core m in
  Component.create m ~name ~core ()

let handler _ = (10, fun () -> ())

let find_check (r : Report.t) check =
  List.filter (fun (v : Report.violation) -> v.Report.check = check)
    r.Report.violations

(* --- static checker: positive ------------------------------------- *)

let test_all_configs_verify_clean () =
  let reports = E.verify_configs () in
  Alcotest.(check bool) "several configurations" true (List.length reports > 10);
  let title_has sub (r : Report.t) =
    let t = r.Report.title and n = String.length sub in
    let rec go i = i + n <= String.length t && (String.sub t i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "pf-sharded configurations covered" true
    (List.exists (title_has " pf=2") reports);
  List.iter
    (fun (r : Report.t) ->
      Alcotest.(check bool)
        (Printf.sprintf "%s: %s" r.Report.title (Report.to_string r))
        true (Report.ok r);
      Alcotest.(check bool)
        (r.Report.title ^ " examined subjects")
        true
        (List.exists (fun (_, n) -> n > 0) r.Report.checks))
    reports;
  let merged = E.verify_all () in
  Alcotest.(check bool) "merged verdict ok" true (Report.ok merged);
  (* The machine-readable verdict agrees. *)
  let json = Report.to_json merged in
  Alcotest.(check bool) "json says ok" true
    (String.length json > 0
    &&
    let contains s sub =
      let n = String.length sub in
      let rec go i = i + n <= String.length s && (String.sub s i n = sub || go (i + 1)) in
      go 0
    in
    contains json "\"ok\": true" || contains json "\"ok\":true")

(* --- static checker: seeded violations ---------------------------- *)

let test_static_spsc_double_producer () =
  let _, m = make_world () in
  let a = make_comp m "a" and b = make_comp m "b" and c = make_comp m "c" in
  let chan = Sim_chan.create ~id:101 () in
  Component.consume c chan handler;
  Component.produce a chan;
  Component.produce b chan;
  let r = Static.check [ a; b; c ] in
  match find_check r "spsc" with
  | [ v ] ->
      Alcotest.(check string) "both producers named" "a, b" v.Report.culprit
  | vs -> Alcotest.failf "expected 1 spsc violation, got %d" (List.length vs)

let test_static_shared_fanout_is_exempt () =
  (* The replicated-IP pattern: one exclusive producer plus any number
     of ~shared fan-out declarations is legal. *)
  let _, m = make_world () in
  let a = make_comp m "ip0" and b = make_comp m "ip1" and c = make_comp m "tcp0" in
  let chan = Sim_chan.create ~id:102 () in
  Component.consume c chan handler;
  Component.produce a chan;
  Component.produce b chan ~shared:true;
  let r = Static.check [ a; b; c ] in
  Alcotest.(check bool) (Report.to_string r) true (Report.ok r)

let test_static_two_consumers () =
  let _, m = make_world () in
  let a = make_comp m "a" and b = make_comp m "b" and c = make_comp m "c" in
  let chan = Sim_chan.create ~id:103 () in
  Component.produce a chan;
  Component.consume b chan handler;
  Component.consume c chan handler;
  let r = Static.check [ a; b; c ] in
  match find_check r "spsc" with
  | [ v ] -> Alcotest.(check string) "both consumers named" "b, c" v.Report.culprit
  | vs -> Alcotest.failf "expected 1 spsc violation, got %d" (List.length vs)

let test_static_core_affinity () =
  let e = Engine.create () in
  let m = Machine.create e in
  let core = Machine.add_dedicated_core m in
  (* Two different servers time-sharing one core: the cross-core
     pipeline the design wants is gone. *)
  let a = Component.create m ~name:"a" ~core ()
  and b = Component.create m ~name:"b" ~core () in
  let chan = Sim_chan.create ~id:104 () in
  Component.produce a chan;
  Component.consume b chan handler;
  let r = Static.check [ a; b ] in
  match find_check r "core-affinity" with
  | [ v ] -> Alcotest.(check string) "pair named" "a, b" v.Report.culprit
  | vs ->
      Alcotest.failf "expected 1 core-affinity violation, got %d" (List.length vs)

let test_static_blocking_cycle () =
  let _, m = make_world () in
  let a = make_comp m "a" and b = make_comp m "b" in
  let ab = Sim_chan.create ~id:105 () and ba = Sim_chan.create ~id:106 () in
  Component.produce a ab ~policy:`Block;
  Component.consume b ab handler;
  Component.produce b ba ~policy:`Block;
  Component.consume a ba handler;
  let r = Static.check [ a; b ] in
  (match find_check r "blocking-cycle" with
  | [ v ] ->
      Alcotest.(check bool) "culprit on the cycle" true
        (v.Report.culprit = "a" || v.Report.culprit = "b")
  | vs ->
      Alcotest.failf "expected 1 blocking-cycle violation, got %d"
        (List.length vs));
  (* Same wiring with the non-blocking discipline is legal. *)
  let _, m2 = make_world () in
  let a2 = make_comp m2 "a" and b2 = make_comp m2 "b" in
  let ab2 = Sim_chan.create ~id:107 () and ba2 = Sim_chan.create ~id:108 () in
  Component.produce a2 ab2;
  Component.consume b2 ab2 handler;
  Component.produce b2 ba2;
  Component.consume a2 ba2 handler;
  Alcotest.(check bool) "drop policy breaks the cycle" true
    (Report.ok (Static.check [ a2; b2 ]))

let test_static_republish_lost_export () =
  let _, m = make_world () in
  let dir = Pubsub.create () in
  let core_a = Machine.add_dedicated_core m
  and core_b = Machine.add_dedicated_core m in
  let a = Component.create m ~name:"a" ~core:core_a ~directory:dir () in
  let b = Component.create m ~name:"b" ~core:core_b ~directory:dir () in
  let chan = Sim_chan.create ~id:109 () in
  Component.produce a chan;
  Component.consume b chan handler;
  Component.export b ~key:"b.rx" chan;
  Alcotest.(check bool) "published graph verifies" true
    (Report.ok (Static.check ~directory:dir [ a; b ]));
  (* The export vanishes from the directory — as if the consumer died
     and never republished. *)
  Pubsub.unpublish dir ~key:"b.rx";
  let r = Static.check ~directory:dir [ a; b ] in
  match find_check r "republish" with
  | [ v ] -> Alcotest.(check string) "exporter blamed" "b" v.Report.culprit
  | vs -> Alcotest.failf "expected 1 republish violation, got %d" (List.length vs)

let test_static_export_by_non_consumer () =
  let _, m = make_world () in
  let a = make_comp m "a" and b = make_comp m "b" in
  let chan = Sim_chan.create ~id:110 () in
  Component.produce a chan;
  Component.consume b chan handler;
  (* The producer claims the export: after b's restart nobody would
     republish the key. *)
  Component.export a ~key:"stolen" chan;
  let r = Static.check [ a; b ] in
  match find_check r "export-owner" with
  | [ v ] -> Alcotest.(check string) "exporter blamed" "a" v.Report.culprit
  | vs ->
      Alcotest.failf "expected 1 export-owner violation, got %d" (List.length vs)

let test_static_pool_double_owner () =
  let _, m = make_world () in
  let a = make_comp m "a" and b = make_comp m "b" in
  let pool = Pool.create ~id:777 ~slots:4 ~slot_size:64 in
  Component.register_pool a pool;
  Component.register_pool b pool;
  let r = Static.check [ a; b ] in
  match find_check r "pool-owner" with
  | [ v ] -> Alcotest.(check string) "both owners named" "a, b" v.Report.culprit
  | vs -> Alcotest.failf "expected 1 pool-owner violation, got %d" (List.length vs)

let minimal_shard_graph () =
  let _, m = make_world () in
  let tcp = make_comp m "tcp0" and ip = make_comp m "ip0" in
  let req = Sim_chan.create ~id:120 () and del = Sim_chan.create ~id:121 () in
  Component.produce tcp req;
  Component.consume ip req handler;
  Component.produce ip del;
  Component.consume tcp del handler;
  let sharding q =
    {
      Static.shards = 1;
      replicas = 1;
      rss_table = [| q |];
      shard_to_ip = [| Sim_chan.id req |];
      ip_to_shard = [| Sim_chan.id del |];
      replica_names = [| "ip0" |];
      shard_names = [| "tcp0" |];
      pf_shards = 0;
      pf_names = [||];
      ip_to_pf = [||];
      pf_to_ip = [||];
    }
  in
  ([ tcp; ip ], sharding)

let test_static_sharding () =
  let comps, sharding = minimal_shard_graph () in
  Alcotest.(check bool) "healthy spec verifies" true
    (Report.ok (Static.check ~sharding:(sharding 0) comps));
  (* Indirection entry names a queue that does not exist: packets for
     that bucket go nowhere and shard 0 never sees a flow. *)
  let r = Static.check ~sharding:(sharding 5) comps in
  let vs = find_check r "sharding" in
  Alcotest.(check int) "bad entry + unreachable shard" 2 (List.length vs);
  List.iter
    (fun (v : Report.violation) ->
      Alcotest.(check string) "the nic's table is at fault" "nic" v.Report.culprit)
    vs

let test_static_sharding_wrong_replica () =
  let comps, sharding = minimal_shard_graph () in
  let spec = { (sharding 0) with Static.replica_names = [| "ip1" |] } in
  let r = Static.check ~sharding:spec comps in
  let vs = find_check r "sharding" in
  Alcotest.(check bool) "misrouted shard flagged" true (List.length vs > 0)

let minimal_pf_shard_graph () =
  let _, m = make_world () in
  let tcp = make_comp m "tcp0" and ip = make_comp m "ip0" in
  let pf0 = make_comp m "pf0" and pf1 = make_comp m "pf1" in
  let req = Sim_chan.create ~id:130 () and del = Sim_chan.create ~id:131 () in
  Component.produce tcp req;
  Component.consume ip req handler;
  Component.produce ip del;
  Component.consume tcp del handler;
  let next_id = ref 132 in
  let pf_pair pf =
    let fresh () =
      let c = Sim_chan.create ~id:!next_id () in
      incr next_id;
      c
    in
    let to_pf = fresh () and from_pf = fresh () in
    Component.produce ip to_pf;
    Component.consume pf to_pf handler;
    Component.produce pf from_pf;
    Component.consume ip from_pf handler;
    (to_pf, from_pf)
  in
  let a = pf_pair pf0 and b = pf_pair pf1 in
  let spec =
    {
      Static.shards = 1;
      replicas = 1;
      rss_table = [| 0 |];
      shard_to_ip = [| Sim_chan.id req |];
      ip_to_shard = [| Sim_chan.id del |];
      replica_names = [| "ip0" |];
      shard_names = [| "tcp0" |];
      pf_shards = 2;
      pf_names = [| "pf0"; "pf1" |];
      ip_to_pf = [| [| Sim_chan.id (fst a); Sim_chan.id (fst b) |] |];
      pf_to_ip = [| [| Sim_chan.id (snd a); Sim_chan.id (snd b) |] |];
    }
  in
  ([ tcp; ip; pf0; pf1 ], spec)

let test_static_sharding_pf () =
  let comps, spec = minimal_pf_shard_graph () in
  let r = Static.check ~sharding:spec comps in
  Alcotest.(check bool) "healthy pf partition verifies" true (Report.ok r);
  Alcotest.(check bool) "pf subjects examined" true
    (List.exists (fun (c, n) -> c = "sharding-pf" && n = 2) r.Report.checks)

let test_static_sharding_pf_swapped_shards () =
  (* The spec claims shard 0's request channel is consumed by pf1 (and
     vice versa): a flow's packets would meet the wrong conntrack
     partition. The checker must refuse. *)
  let comps, spec = minimal_pf_shard_graph () in
  let bad = { spec with Static.pf_names = [| "pf1"; "pf0" |] } in
  let r = Static.check ~sharding:bad comps in
  let vs = find_check r "sharding" in
  Alcotest.(check bool) "swapped pf partition flagged" true
    (List.length vs >= 2)

let test_static_sharding_pf_missing_fanout () =
  (* An IP replica wired to only one of two PF shards: half the flow
     space has no filter on its path. *)
  let comps, spec = minimal_pf_shard_graph () in
  let bad =
    {
      spec with
      Static.ip_to_pf = [| [| spec.Static.ip_to_pf.(0).(0) |] |];
    }
  in
  let r = Static.check ~sharding:bad comps in
  let vs = find_check r "sharding" in
  Alcotest.(check bool) "incomplete pf fan-out flagged" true
    (List.length vs > 0)

(* --- sanitizer: staged violations --------------------------------- *)

let with_sanitizer f =
  Sanitizer.install ();
  Fun.protect ~finally:Sanitizer.uninstall f

let test_sanitizer_double_free () =
  with_sanitizer @@ fun () ->
  let p = Pool.create ~id:301 ~slots:2 ~slot_size:32 in
  Hook.with_actor "tcp0" (fun () ->
      let ptr = Pool.alloc p ~len:8 in
      Pool.free p ptr;
      try Pool.free p ptr with Pool.Double_free _ -> ());
  match Sanitizer.violations () with
  | [ Sanitizer.Double_free { actor; _ } ] ->
      Alcotest.(check (option string)) "attributed" (Some "tcp0") actor;
      let r = Sanitizer.report ~title:"t" () in
      Alcotest.(check bool) "report not ok" false (Report.ok r);
      let v = List.hd r.Report.violations in
      Alcotest.(check string) "check name" "double-free" v.Report.check;
      Alcotest.(check string) "culprit" "tcp0" v.Report.culprit
  | vs -> Alcotest.failf "expected 1 double-free, got %d" (List.length vs)

let test_sanitizer_non_owner_write () =
  with_sanitizer @@ fun () ->
  let p = Pool.create ~id:302 ~slots:2 ~slot_size:32 in
  Hook.emit (Hook.Pool_own { pool = Pool.id p; owner = "ip0" });
  let src = Bytes.make 8 'x' in
  let ptr = Hook.with_actor "ip0" (fun () -> Pool.alloc p ~len:8) in
  (* The owner writes: fine. *)
  Hook.with_actor "ip0" (fun () -> Pool.write p ptr ~src ~src_off:0);
  Alcotest.(check int) "owner write clean" 0
    (List.length (Sanitizer.violations ()));
  (* Another server scribbles into a pool it was never granted. *)
  Hook.with_actor "pf" (fun () -> Pool.write p ptr ~src ~src_off:0);
  (match Sanitizer.violations () with
  | [ Sanitizer.Non_owner_write { actor; owner; _ } ] ->
      Alcotest.(check string) "intruder" "pf" actor;
      Alcotest.(check string) "owner" "ip0" owner
  | vs -> Alcotest.failf "expected 1 non-owner-write, got %d" (List.length vs));
  (* A DMA grant whitelists the pool: the device path may write. *)
  Sanitizer.reset ();
  Hook.emit (Hook.Pool_own { pool = Pool.id p; owner = "ip0" });
  Hook.emit (Hook.Pool_grant { pool = Pool.id p });
  Hook.with_actor "drv0" (fun () -> Pool.write p ptr ~src ~src_off:0);
  Alcotest.(check int) "granted pool writable" 0
    (List.length (Sanitizer.violations ()))

let test_sanitizer_free_in_flight () =
  with_sanitizer @@ fun () ->
  let _, m = make_world () in
  let core = Machine.add_dedicated_core m in
  let sender = Proc.create m ~name:"ip0" ~core () in
  let chan = Sim_chan.create ~id:303 () in
  let p = Pool.create ~id:304 ~slots:2 ~slot_size:64 in
  let ptr = Hook.with_actor "ip0" (fun () -> Pool.alloc p ~len:16) in
  (* The message sits queued — nobody consumes — and the sender frees
     the buffer anyway: the consumer would read freed memory. *)
  Alcotest.(check bool) "queued" true
    (Proc.send sender chan (Msg.Rx_done { buf = ptr }));
  Hook.with_actor "ip0" (fun () -> Pool.free p ptr);
  (match Sanitizer.violations () with
  | [ Sanitizer.Free_in_flight { actor; in_flight; _ } ] ->
      Alcotest.(check (option string)) "attributed" (Some "ip0") actor;
      Alcotest.(check int) "one message outstanding" 1 in_flight
  | vs -> Alcotest.failf "expected 1 free-in-flight, got %d" (List.length vs));
  (* Dequeue-then-free is the legal order. *)
  Sanitizer.reset ();
  let ptr2 = Hook.with_actor "ip0" (fun () -> Pool.alloc p ~len:16) in
  let receiver = Proc.create m ~name:"tcp0" ~core:(Machine.add_dedicated_core m) () in
  let chan2 = Sim_chan.create ~id:305 () in
  let freed = ref false in
  Proc.add_rx receiver chan2 (fun _ ->
      (10, fun () -> Pool.free p ptr2; freed := true));
  ignore (Proc.send sender chan2 (Msg.Rx_done { buf = ptr2 }));
  Engine.run (Machine.engine m);
  Alcotest.(check bool) "consumer freed it" true !freed;
  Alcotest.(check int) "no violation on the legal order" 0
    (List.length (Sanitizer.violations ()))

let test_sanitizer_leaks () =
  with_sanitizer @@ fun () ->
  let p = Pool.create ~id:306 ~slots:4 ~slot_size:32 in
  Hook.emit (Hook.Pool_own { pool = Pool.id p; owner = "udp0" });
  let ptr = Hook.with_actor "udp0" (fun () -> ignore (Pool.alloc p ~len:8);
      Pool.alloc p ~len:8) in
  Hook.with_actor "udp0" (fun () -> Pool.free p ptr);
  (match Sanitizer.leaks () with
  | [ l ] ->
      Alcotest.(check int) "leak in the right pool" (Pool.id p) l.Sanitizer.pool;
      Alcotest.(check (option string)) "allocator recorded" (Some "udp0")
        l.Sanitizer.allocator
  | ls -> Alcotest.failf "expected 1 leak, got %d" (List.length ls));
  let r = Sanitizer.report ~check_leaks:true ~title:"t" () in
  Alcotest.(check bool) "leak fails the leak-checked report" false (Report.ok r);
  Alcotest.(check bool) "but is not a violation by itself" true
    (Report.ok (Sanitizer.report ~title:"t" ()));
  (* A DMA-granted pool keeps its ring populated by design. *)
  let rx = Pool.create ~id:307 ~slots:2 ~slot_size:32 in
  Hook.emit (Hook.Pool_grant { pool = Pool.id rx });
  ignore (Pool.alloc rx ~len:8);
  Alcotest.(check int) "granted pool exempt" 1 (List.length (Sanitizer.leaks ()))

let test_sanitizer_stale_is_observation () =
  with_sanitizer @@ fun () ->
  let p = Pool.create ~id:308 ~slots:2 ~slot_size:32 in
  let ptr = Pool.alloc p ~len:8 in
  Pool.free p ptr;
  (try ignore (Pool.read p ptr) with Pool.Stale_pointer _ -> ());
  Alcotest.(check int) "recorded" 1 (Sanitizer.stale_count ());
  Alcotest.(check int) "not a violation" 0 (List.length (Sanitizer.violations ()))

let test_sanitizer_crash_reclaim_not_leaked () =
  with_sanitizer @@ fun () ->
  let p = Pool.create ~id:309 ~slots:2 ~slot_size:32 in
  Hook.emit (Hook.Pool_own { pool = Pool.id p; owner = "ip0" });
  ignore (Hook.with_actor "ip0" (fun () -> Pool.alloc p ~len:8));
  (* The owner crashes; reincarnation reclaims wholesale. *)
  Pool.free_all p;
  Alcotest.(check int) "no leaks after crash reclaim" 0
    (List.length (Sanitizer.leaks ()));
  Alcotest.(check int) "no violations either" 0
    (List.length (Sanitizer.violations ()))

let test_sanitizer_cross_incarnation_free () =
  with_sanitizer @@ fun () ->
  let p = Pool.create ~id:310 ~slots:2 ~slot_size:32 in
  Hook.emit (Hook.Pool_own { pool = Pool.id p; owner = "tcp0" });
  let ptr = Hook.with_actor ~epoch:1 "tcp0" (fun () -> Pool.alloc p ~len:8) in
  (* The server's next incarnation frees a slot its previous life
     allocated: pool generations line up, only the epoch betrays that
     the slot survived a teardown that should have reclaimed it. *)
  Hook.with_actor ~epoch:2 "tcp0" (fun () -> Pool.free p ptr);
  (match Sanitizer.violations () with
  | [ Sanitizer.Cross_incarnation_free { actor; alloc_epoch; free_epoch; _ } ] ->
      Alcotest.(check string) "actor" "tcp0" actor;
      Alcotest.(check int) "alloc epoch" 1 alloc_epoch;
      Alcotest.(check int) "free epoch" 2 free_epoch;
      let r = Sanitizer.report ~title:"t" () in
      Alcotest.(check bool) "fails the report" false (Report.ok r);
      let v = List.hd r.Report.violations in
      Alcotest.(check string) "check name" "cross-incarnation-free" v.Report.check
  | vs ->
      Alcotest.failf "expected 1 cross-incarnation free, got %d" (List.length vs));
  (* Same-incarnation alloc/free is the normal case. *)
  Sanitizer.reset ();
  let ptr2 = Hook.with_actor ~epoch:2 "tcp0" (fun () -> Pool.alloc p ~len:8) in
  Hook.with_actor ~epoch:2 "tcp0" (fun () -> Pool.free p ptr2);
  Alcotest.(check int) "same incarnation clean" 0
    (List.length (Sanitizer.violations ()));
  (* DMA-granted pools are exempt: device-held ring slots legitimately
     straddle the driver's incarnations. *)
  let rx = Pool.create ~id:311 ~slots:2 ~slot_size:32 in
  Hook.emit (Hook.Pool_grant { pool = Pool.id rx });
  let ptr3 = Hook.with_actor ~epoch:1 "drv0" (fun () -> Pool.alloc rx ~len:8) in
  Hook.with_actor ~epoch:2 "drv0" (fun () -> Pool.free rx ptr3);
  Alcotest.(check int) "granted pool exempt" 0
    (List.length (Sanitizer.violations ()))

(* --- continuous verification across restarts ---------------------- *)

let test_continuous_stock_campaign_clean () =
  let v = Newt_verify.Continuous.create () in
  ignore (E.fault_campaign ~runs:2 ~seed:2 ~verify:v ());
  let t = Newt_verify.Continuous.totals v in
  Alcotest.(check bool) "re-checked after restarts" true
    (t.Newt_verify.Continuous.re_checks >= 2);
  Alcotest.(check int) "one counter block per run" 2
    (List.length (Newt_verify.Continuous.runs v));
  Alcotest.(check bool)
    (Report.to_string
       (Newt_verify.Continuous.report ~title:"stock campaign" v))
    true
    (Newt_verify.Continuous.ok v)

let test_continuous_catches_broken_recovery () =
  (* Recovery that puts the restarted IP server on the wrong core: the
     traffic still flows, so only the continuous re-check can fail the
     campaign. *)
  let v = Newt_verify.Continuous.create () in
  ignore
    (E.fault_campaign ~runs:3 ~seed:2 ~verify:v
       ~break_recovery:(Newt_core.Host.C_ip, Newt_core.Host.Wrong_core) ());
  Alcotest.(check bool) "wrong-core recovery fails the campaign" false
    (Newt_verify.Continuous.ok v);
  let t = Newt_verify.Continuous.totals v in
  Alcotest.(check bool) "as static violations" true
    (t.Newt_verify.Continuous.static_violations > 0);
  (* Recovery that skips republishing an export: a pure metadata lie —
     the wired channels are fine — caught by the republish check. *)
  let v2 = Newt_verify.Continuous.create () in
  ignore
    (E.fault_campaign ~runs:3 ~seed:2 ~verify:v2
       ~break_recovery:(Newt_core.Host.C_tcp, Newt_core.Host.Skip_republish) ());
  Alcotest.(check bool) "skipped republish fails the campaign" false
    (Newt_verify.Continuous.ok v2)

(* --- protocol checker: staged event streams ----------------------- *)

let with_protocol f =
  Protocol.install ();
  Fun.protect
    ~finally:(fun () ->
      Protocol.uninstall ();
      Protocol.reset ())
    f

let test_protocol_clean_conversation () =
  with_protocol (fun () ->
      let id = 900_001 in
      Hook.emit (Hook.Req_submit { db = 1; id; peer = 2 });
      Hook.emit (Hook.Msg_req { chan = 10; id; way = `Sent });
      Hook.emit (Hook.Msg_req { chan = 10; id; way = `Received });
      Hook.emit (Hook.Msg_conf { chan = 11; id; way = `Sent });
      Hook.emit (Hook.Msg_conf { chan = 11; id; way = `Received });
      Hook.emit (Hook.Req_confirm { db = 1; id; known = true });
      Protocol.finish ~drained:true ();
      let r = Protocol.report () in
      Alcotest.(check bool) (Report.to_string r) true (Report.ok r);
      Alcotest.(check int) "one request" 1 (Protocol.count "requests");
      Alcotest.(check int) "one confirm" 1 (Protocol.count "confirms");
      Alcotest.(check int) "one conversation" 1 (Protocol.conversations ());
      Alcotest.(check int) "six protocol events replayed" 6
        (Protocol.event_count ());
      Alcotest.(check int) "trace remembers them all" 6
        (List.length (Protocol.trace ()));
      Alcotest.(check bool) "overhead accounted" true
        (Protocol.overhead_cycles () > 0))

let test_protocol_confirm_without_request () =
  (* A reply for an id nobody ever submitted: not the benign stale case
     (those require the conversation to have been closed by a crash). *)
  with_protocol (fun () ->
      Hook.emit (Hook.Req_confirm { db = 1; id = 910_001; known = false });
      (match find_check (Protocol.report ()) "confirm-without-request" with
      | [ v ] ->
          Alcotest.(check string) "subject names the id" "request id 910001"
            v.Report.subject
      | vs ->
          Alcotest.failf "expected 1 confirm-without-request, got %d"
            (List.length vs));
      (* A *live-record* confirm the checker never saw submitted is the
         other flavour: the database resolved a record out of thin air. *)
      Hook.emit (Hook.Req_confirm { db = 1; id = 910_002; known = true });
      Alcotest.(check int) "unpaired live confirm flagged" 1
        (List.length (find_check (Protocol.report ()) "confirm-unpaired")))

let test_protocol_dropped_confirm () =
  with_protocol (fun () ->
      let id = 920_001 in
      Hook.emit (Hook.Req_submit { db = 3; id; peer = 9 });
      Hook.emit (Hook.Msg_conf { chan = 12; id; way = `Dropped });
      (match find_check (Protocol.report ()) "dropped-confirm" with
      | [ _ ] -> ()
      | vs ->
          Alcotest.failf "expected 1 dropped-confirm, got %d" (List.length vs));
      (* Once a crash closed the conversation (database reset), a
         discarded confirm is the normal teardown path: counted, not
         flagged. *)
      Hook.emit (Hook.Req_reset { db = 3 });
      Hook.emit (Hook.Msg_conf { chan = 12; id; way = `Dropped });
      Alcotest.(check int) "post-reset drop only counted" 1
        (List.length (find_check (Protocol.report ()) "dropped-confirm"));
      Alcotest.(check int) "conf-drops counter bumped" 1
        (Protocol.count "conf-drops");
      Alcotest.(check int) "owner death recorded" 1
        (Protocol.count "owner-deaths"))

let test_protocol_stale_and_duplicate_confirms () =
  with_protocol (fun () ->
      (* The by-design stale reply: request aborted by the sweep, then
         the old peer's answer trickles in. *)
      let id = 930_001 in
      Hook.emit (Hook.Req_submit { db = 5; id; peer = 2 });
      Hook.emit (Hook.Req_abort { db = 5; id; peer = 2 });
      Hook.emit (Hook.Req_confirm { db = 5; id; known = false });
      Alcotest.(check int) "abort discharged the obligation" 1
        (Protocol.count "aborts");
      Alcotest.(check int) "stale confirm absorbed" 1
        (Protocol.count "stale-confirms");
      let r = Protocol.report () in
      Alcotest.(check bool) (Report.to_string r) true (Report.ok r);
      (* A second confirm for an already-confirmed request is not. *)
      let id2 = 930_002 in
      Hook.emit (Hook.Req_submit { db = 5; id = id2; peer = 2 });
      Hook.emit (Hook.Req_confirm { db = 5; id = id2; known = true });
      Hook.emit (Hook.Req_confirm { db = 5; id = id2; known = false });
      Alcotest.(check int) "duplicate confirm flagged" 1
        (List.length (find_check (Protocol.report ()) "duplicate-confirm")))

let test_protocol_finish_closes_obligations () =
  with_protocol (fun () ->
      let id = 940_001 in
      Hook.emit (Hook.Req_submit { db = 4; id; peer = 1 });
      Hook.emit (Hook.Msg_req { chan = 13; id; way = `Sent });
      (* Mid-run, in-flight work is legitimate; so is an undrained
         finish (a frozen world never quiesces). *)
      Alcotest.(check int) "mid-run silent" 0
        (List.length (Protocol.violations ()));
      Protocol.finish ();
      Alcotest.(check int) "undrained finish silent" 0
        (List.length (Protocol.violations ()));
      (* A drained run may not leave the obligation open, nor the
         hand-off undelivered. *)
      Protocol.finish ~drained:true ();
      Alcotest.(check int) "unresolved request flagged" 1
        (List.length (find_check (Protocol.report ()) "unresolved-request"));
      Alcotest.(check int) "undelivered hand-off flagged" 1
        (List.length (find_check (Protocol.report ()) "undelivered-handoff")))

let test_protocol_retirement_keeps_table_flat () =
  (* A continuously-running checker must not leak: 100k complete
     request/confirm cycles, table size stays bounded by the grace
     window instead of growing to 100k conversations. *)
  with_protocol (fun () ->
      Protocol.set_retire_grace 256;
      Fun.protect ~finally:(fun () -> Protocol.set_retire_grace 4096)
      @@ fun () ->
      let high_water = ref 0 in
      for id = 1 to 100_000 do
        Hook.emit (Hook.Req_submit { db = 1; id; peer = 2 });
        Hook.emit (Hook.Msg_req { chan = 10; id; way = `Sent });
        Hook.emit (Hook.Msg_req { chan = 10; id; way = `Received });
        Hook.emit (Hook.Msg_conf { chan = 11; id; way = `Sent });
        Hook.emit (Hook.Msg_conf { chan = 11; id; way = `Received });
        Hook.emit (Hook.Req_confirm { db = 1; id; known = true });
        high_water := max !high_water (Protocol.conversations ())
      done;
      (* Six events per cycle: a confirmed conversation lives at most
         ~grace/6 further cycles before retirement. *)
      Alcotest.(check bool)
        (Printf.sprintf "table stays flat (high water %d)" !high_water)
        true
        (!high_water <= 256 + 8);
      Alcotest.(check int) "every request opened" 100_000
        (Protocol.count "requests");
      Alcotest.(check int) "every request confirmed" 100_000
        (Protocol.count "confirms");
      Alcotest.(check bool) "almost all conversations retired" true
        (Protocol.count "retired" > 99_000);
      Protocol.finish ~drained:true ();
      let r = Protocol.report () in
      Alcotest.(check bool) (Report.to_string r) true (Report.ok r))

let test_protocol_retirement_spares_open_obligations () =
  (* Only terminal conversations retire: an obligation still open after
     any amount of churn must survive, and its late confirm must pair
     up cleanly instead of being flagged as unpaired. *)
  with_protocol (fun () ->
      Protocol.set_retire_grace 16;
      Fun.protect ~finally:(fun () -> Protocol.set_retire_grace 4096)
      @@ fun () ->
      let slow = 950_000 in
      Hook.emit (Hook.Req_submit { db = 7; id = slow; peer = 2 });
      for id = 950_001 to 950_200 do
        Hook.emit (Hook.Req_submit { db = 7; id; peer = 2 });
        Hook.emit (Hook.Req_confirm { db = 7; id; known = true })
      done;
      Alcotest.(check bool) "churned conversations retired" true
        (Protocol.conversations () < 50);
      Hook.emit (Hook.Req_confirm { db = 7; id = slow; known = true });
      Protocol.finish ~drained:true ();
      let r = Protocol.report () in
      Alcotest.(check bool) (Report.to_string r) true (Report.ok r);
      Alcotest.(check int) "all confirms paired" 201
        (Protocol.count "confirms"))

let test_protocol_rule_listing () =
  let lines = Protocol.describe_rules () in
  Alcotest.(check int) "one line per contract rule"
    (List.length Protocol.contract) (List.length lines);
  List.iter
    (fun l ->
      Alcotest.(check bool) ("rule line rendered: " ^ l) true
        (String.length l > 0))
    lines

(* --- model checker: search driver over synthetic runners ----------- *)

let test_mcheck_search_and_counterexamples () =
  let cases = Mcheck.enumerate [ ("a", [ "s1"; "s2" ]); ("b", [ "s1" ]) ] in
  Alcotest.(check int) "flattened crash points" 3 (List.length cases);
  let run (c : Mcheck.case) =
    let converged = c.Mcheck.component <> "b" in
    {
      Mcheck.case = c;
      converged;
      violations = [];
      trace = (if converged then [] else [ "b: submit id 1 (db 1, to peer 2)" ]);
    }
  in
  let o = Mcheck.search ~cases ~run () in
  Alcotest.(check int) "every case ran" 3 (List.length o.Mcheck.verdicts);
  Alcotest.(check int) "nothing skipped" 0 (List.length o.Mcheck.skipped);
  Alcotest.(check bool) "a counterexample fails the search" false (Mcheck.ok o);
  (match Mcheck.counterexamples o with
  | [ v ] ->
      Alcotest.(check string) "the b crash point" "b"
        v.Mcheck.case.Mcheck.component;
      Alcotest.(check bool) "event trace attached" true (v.Mcheck.trace <> [])
  | ces -> Alcotest.failf "expected 1 counterexample, got %d" (List.length ces));
  (* A bare convergence failure renders as a no-convergence violation
     naming the crash point. *)
  let r = Mcheck.report ~title:"synthetic" o in
  (match find_check r "no-convergence" with
  | [ v ] ->
      Alcotest.(check string) "crash point in the subject"
        "b crashed after step s1" v.Report.subject
  | vs -> Alcotest.failf "expected 1 no-convergence, got %d" (List.length vs));
  let json = Mcheck.to_json ~title:"synthetic" o in
  let contains s sub =
    let n = String.length sub in
    let rec go i =
      i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "json verdict is not ok" true
    (contains json "\"ok\":false");
  Alcotest.(check bool) "json carries the trace" true
    (contains json "submit id 1")

let test_mcheck_budget_skips_never_drops () =
  let cases = Mcheck.enumerate [ ("a", [ "s1"; "s2"; "s3" ]) ] in
  let ran = ref 0 in
  let run (c : Mcheck.case) =
    incr ran;
    { Mcheck.case = c; converged = true; violations = []; trace = [] }
  in
  (* An already-exhausted budget: every case must be reported skipped,
     none silently dropped, and skipping alone is not a failure. *)
  let o = Mcheck.search ~budget:(-1.0) ~cases ~run () in
  Alcotest.(check int) "nothing ran" 0 !ran;
  Alcotest.(check int) "every case reported skipped" 3
    (List.length o.Mcheck.skipped);
  Alcotest.(check bool) "skipped cases do not fail the search" true
    (Mcheck.ok o)

let test_mcheck_split_crash_point_space () =
  (* The split stack's search space: every killable component of a
     probe host (the supervisor itself is not a crash point), each with
     the built-in steps bracketing its labeled recovery procedure. *)
  let specs = E.split_crash_points () in
  Alcotest.(check (list string)) "killable components"
    [ "drv0"; "ip"; "pf"; "tcp"; "udp" ]
    (List.sort compare (List.map fst specs));
  List.iter
    (fun (name, steps) ->
      Alcotest.(check bool) (name ^ " revives channels first") true
        (List.mem "revive-channels" steps);
      Alcotest.(check bool) (name ^ " republishes exports") true
        (List.mem "republish-exports" steps))
    specs;
  Alcotest.(check int) "sixteen crash points" 16
    (List.length (Mcheck.enumerate specs))

(* --- sanitizer: a real fault-injected run ------------------------- *)

let test_sanitized_crash_run_clean () =
  let report, trace = E.sanitized_ip_crash ~duration:3.0 ~crash_at:1.5 () in
  Alcotest.(check bool)
    (Printf.sprintf "no violations in a crash-recovery run:\n%s"
       (Report.to_string report))
    true (Report.ok report);
  Alcotest.(check bool) "the crash actually happened" true
    (trace.E.component_restarts >= 1)

(* --- tcp-fsm checker: table lint, conntrack drift, sampling ------- *)

module Tcpfsm = Newt_verify.Tcpfsm
module Conntrack = Newt_pf.Conntrack
module Tcp = Newt_net.Tcp
module Addr = Newt_net.Addr

let test_tcpfsm_lint_clean () =
  let r = Tcpfsm.lint_table () in
  Alcotest.(check bool)
    (Printf.sprintf "shipped tables lint clean:\n%s" (Report.to_string r))
    true (Report.ok r);
  Alcotest.(check bool) "rules and transitions are documented" true
    (Tcpfsm.describe_rules () <> [] && Tcpfsm.describe_transitions () <> [])

let test_tcpfsm_lint_catches_deleted_rules () =
  (* The lint is only worth trusting if it notices sabotage. Deleting
     a Deny backstop or the trailing rx wildcard must break totality;
     deleting an Allow whose cells a later Deny still covers may lint
     clean — so we count, not quantify-over-all. *)
  let broken = ref 0 in
  for i = 0 to Tcpfsm.seg_rule_count - 1 do
    if not (Report.ok (Tcpfsm.lint_dropping i)) then incr broken
  done;
  Alcotest.(check bool)
    (Printf.sprintf "most single-rule deletions break the lint (%d/%d)" !broken
       Tcpfsm.seg_rule_count)
    true
    (!broken >= 6);
  Alcotest.(check bool) "deleting the rx wildcard breaks totality" false
    (Report.ok (Tcpfsm.lint_dropping (Tcpfsm.seg_rule_count - 1)))

let drift_lip = Addr.Ipv4.v 10 9 0 1
let drift_rip = Addr.Ipv4.v 10 9 0 2

let drift_transition ~from_s ~to_s cause =
  Hook.tcp_emit
    (Hook.T_state_change
       {
         lip = Addr.Ipv4.to_int32 drift_lip;
         lport = 80;
         rip = Addr.Ipv4.to_int32 drift_rip;
         rport = 4242;
         from_s = Tcp.state_code from_s;
         to_s = Tcp.state_code to_s;
         cause;
       })

let rx_syn =
  Hook.T_rx { Hook.syn = true; ack = false; fin = false; rst = false; data = false }

let rx_ack =
  Hook.T_rx { Hook.syn = false; ack = true; fin = false; rst = false; data = false }

let test_tcpfsm_conntrack_drift_flagged () =
  Tcpfsm.install ();
  Tcpfsm.reset ();
  Fun.protect ~finally:Tcpfsm.uninstall @@ fun () ->
  (* A half-open PCB: the shadow FSM parks it in SYN_RECEIVED. *)
  drift_transition ~from_s:Tcp.Closed ~to_s:Tcp.Syn_received rx_syn;
  Alcotest.(check bool) "shadow tracks SYN_RECEIVED" true
    (Tcpfsm.state_of
       ~lip:(Addr.Ipv4.to_int32 drift_lip)
       ~lport:80
       ~rip:(Addr.Ipv4.to_int32 drift_rip)
       ~rport:4242
    = Tcp.Syn_received);
  (* The filter claims the handshake completed: drift, flagged. *)
  let flow =
    {
      Conntrack.proto = Conntrack.Ct_tcp;
      local_ip = drift_lip;
      local_port = 80;
      remote_ip = drift_rip;
      remote_port = 4242;
    }
  in
  let ct = Conntrack.create () in
  Conntrack.insert ct ~now:0 ~confirmed:true flow;
  Tcpfsm.crosscheck_conntrack ~where:"drift test" ct;
  Alcotest.(check bool) "confirmed-while-half-open flagged" true
    (List.exists
       (fun (v : Report.violation) ->
         v.Report.check = "conntrack-confirmed-half-open")
       (Tcpfsm.violations ()))

let test_tcpfsm_conntrack_agreement_clean () =
  Tcpfsm.install ();
  Tcpfsm.reset ();
  Fun.protect ~finally:Tcpfsm.uninstall @@ fun () ->
  (* The same flow, handshake completed: confirmation is earned. *)
  drift_transition ~from_s:Tcp.Closed ~to_s:Tcp.Syn_received rx_syn;
  drift_transition ~from_s:Tcp.Syn_received ~to_s:Tcp.Established rx_ack;
  let flow =
    {
      Conntrack.proto = Conntrack.Ct_tcp;
      local_ip = drift_lip;
      local_port = 80;
      remote_ip = drift_rip;
      remote_port = 4242;
    }
  in
  let ct = Conntrack.create () in
  Conntrack.insert ct ~now:0 ~confirmed:true flow;
  (* Plus one the checker never saw: skipped, not guessed at. *)
  Conntrack.insert ct ~now:0 ~confirmed:true
    { flow with Conntrack.remote_port = 5353 };
  Tcpfsm.crosscheck_conntrack ~where:"agreement test" ct;
  Alcotest.(check int) "established + confirmed cross-checks clean" 0
    (List.length (Tcpfsm.violations ()))

let test_tcpfsm_sampling_keeps_whole_connections () =
  (* 1-in-N sampling must drop whole connections, never truncate a
     stream mid-flight — a half-seen handshake would read as an
     illegal transition and poison the verdict. *)
  Tcpfsm.install ();
  Tcpfsm.reset ();
  Fun.protect
    ~finally:(fun () ->
      Tcpfsm.uninstall ();
      Hook.set_tcp_sample 1)
  @@ fun () ->
  Hook.set_tcp_sample 4;
  let syn_sent_cause = Hook.T_api in
  for rport = 1000 to 1063 do
    Hook.tcp_emit
      (Hook.T_state_change
         {
           lip = Addr.Ipv4.to_int32 drift_lip;
           lport = 30_000 + rport;
           rip = Addr.Ipv4.to_int32 drift_rip;
           rport;
           from_s = Tcp.state_code Tcp.Closed;
           to_s = Tcp.state_code Tcp.Syn_sent;
           cause = syn_sent_cause;
         });
    Hook.tcp_emit
      (Hook.T_state_change
         {
           lip = Addr.Ipv4.to_int32 drift_lip;
           lport = 30_000 + rport;
           rip = Addr.Ipv4.to_int32 drift_rip;
           rport;
           from_s = Tcp.state_code Tcp.Syn_sent;
           to_s = Tcp.state_code Tcp.Established;
           cause =
             Hook.T_rx
               { Hook.syn = true; ack = true; fin = false; rst = false;
                 data = false };
         })
  done;
  let seen, kept = Hook.tcp_sample_counts () in
  Alcotest.(check int) "every emission was counted" 128 seen;
  Alcotest.(check bool)
    (Printf.sprintf "a strict nonempty subset was kept (%d/%d)" kept seen)
    true
    (kept > 0 && kept < seen);
  Alcotest.(check bool) "kept events come in whole connections" true
    (kept mod 2 = 0);
  (* No transition-origin mismatches: dropped connections vanished
     whole, so the checker saw nothing inconsistent. *)
  Alcotest.(check int) "sampling produced no violations" 0
    (List.length (Tcpfsm.violations ()))

let suite =
  [
    ("all shipped configurations verify", `Quick, test_all_configs_verify_clean);
    ("spsc: double producer flagged", `Quick, test_static_spsc_double_producer);
    ("spsc: shared fan-out exempt", `Quick, test_static_shared_fanout_is_exempt);
    ("spsc: two consumers flagged", `Quick, test_static_two_consumers);
    ("core-affinity: shared core flagged", `Quick, test_static_core_affinity);
    ("blocking cycle flagged, drop policy legal", `Quick, test_static_blocking_cycle);
    ("republish: lost export flagged", `Quick, test_static_republish_lost_export);
    ("export-owner: non-consumer export flagged", `Quick,
      test_static_export_by_non_consumer);
    ("pool-owner: double registration flagged", `Quick,
      test_static_pool_double_owner);
    ("sharding: broken rss table flagged", `Quick, test_static_sharding);
    ("sharding: wrong replica flagged", `Quick, test_static_sharding_wrong_replica);
    ("sharding-pf: healthy partition verifies", `Quick, test_static_sharding_pf);
    ( "sharding-pf: swapped pf shards flagged",
      `Quick,
      test_static_sharding_pf_swapped_shards );
    ( "sharding-pf: incomplete fan-out flagged",
      `Quick,
      test_static_sharding_pf_missing_fanout );
    ("sanitizer: double free attributed", `Quick, test_sanitizer_double_free);
    ("sanitizer: non-owner write and dma grant", `Quick,
      test_sanitizer_non_owner_write);
    ("sanitizer: free while in flight", `Quick, test_sanitizer_free_in_flight);
    ("sanitizer: leak detection", `Quick, test_sanitizer_leaks);
    ("sanitizer: stale deref is an observation", `Quick,
      test_sanitizer_stale_is_observation);
    ("sanitizer: crash reclaim is not a leak", `Quick,
      test_sanitizer_crash_reclaim_not_leaked);
    ("sanitizer: cross-incarnation free flagged", `Quick,
      test_sanitizer_cross_incarnation_free);
    ("continuous: stock campaign re-checks clean", `Quick,
      test_continuous_stock_campaign_clean);
    ("continuous: broken recovery fails the campaign", `Quick,
      test_continuous_catches_broken_recovery);
    ("sanitizer: fault-injected run is clean", `Quick,
      test_sanitized_crash_run_clean);
    ("protocol: clean conversation", `Quick, test_protocol_clean_conversation);
    ("protocol: confirm without request flagged", `Quick,
      test_protocol_confirm_without_request);
    ("protocol: dropped confirm strands the requester", `Quick,
      test_protocol_dropped_confirm);
    ("protocol: stale absorbed, duplicate flagged", `Quick,
      test_protocol_stale_and_duplicate_confirms);
    ("protocol: drained finish closes obligations", `Quick,
      test_protocol_finish_closes_obligations);
    ("protocol: rule listing matches the contract", `Quick,
      test_protocol_rule_listing);
    ("protocol: retirement keeps the table flat over 100k cycles", `Quick,
      test_protocol_retirement_keeps_table_flat);
    ("protocol: retirement spares open obligations", `Quick,
      test_protocol_retirement_spares_open_obligations);
    ("mcheck: search, counterexamples, report", `Quick,
      test_mcheck_search_and_counterexamples);
    ("mcheck: budget skips, never drops", `Quick,
      test_mcheck_budget_skips_never_drops);
    ("mcheck: split-stack crash-point space", `Quick,
      test_mcheck_split_crash_point_space);
    ("tcp-fsm: tables lint clean", `Quick, test_tcpfsm_lint_clean);
    ("tcp-fsm: lint catches deleted rules", `Quick,
      test_tcpfsm_lint_catches_deleted_rules);
    ("tcp-fsm: conntrack confirmed-while-half-open flagged", `Quick,
      test_tcpfsm_conntrack_drift_flagged);
    ("tcp-fsm: conntrack agreement cross-checks clean", `Quick,
      test_tcpfsm_conntrack_agreement_clean);
    ("tcp-fsm: sampling keeps whole connections", `Quick,
      test_tcpfsm_sampling_keeps_whole_connections);
  ]
